//! Training-data generation: the 25 configurations of Table 1.
//!
//! Each configuration runs one service (Solr, Memcache or Cassandra
//! under a YCSB class) with specific container limits and a traffic
//! pattern, optionally co-located with a partner configuration to learn
//! interference effects. Before the measured run, a linearly increasing
//! load test calibrates the saturation threshold `Υ` via Kneedle
//! (Section 2.2); the measured run's samples are then labeled by
//! comparing the per-second KPI against `Υ`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitorless_label::kneedle::KneedleParams;
use monitorless_label::{SaturationDirection, SaturationThreshold};
use monitorless_learn::{Dataset, MatrixBuilder};
use monitorless_metrics::{InstanceId, NodeId};
use monitorless_obs as obs;
use monitorless_sim::apps::{build_single, cassandra_profile, memcache_profile, solr_profile};
use monitorless_sim::{AppId, Bottleneck, Cluster, ContainerLimits, NodeSpec, ServiceProfile};
use monitorless_std::pool;
use monitorless_workload::{
    ConstantProfile, LoadProfile, NoisyProfile, RampProfile, SineProfile, SteppedProfile, YcsbClass,
};

use crate::features::RawLayout;
use crate::Error;

/// Which training service a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// Apache Solr enterprise search.
    Solr,
    /// Memcache object cache.
    Memcache,
    /// Apache Cassandra under the given YCSB class.
    Cassandra(YcsbClass),
}

impl ServiceKind {
    /// The demand profile for this service.
    pub fn profile(self) -> ServiceProfile {
        match self {
            ServiceKind::Solr => solr_profile(),
            ServiceKind::Memcache => memcache_profile(),
            ServiceKind::Cassandra(class) => cassandra_profile(class),
        }
    }

    /// Short display name as in Table 1. Static — the table printers
    /// call this per row and need no allocation.
    pub fn short_name(self) -> &'static str {
        match self {
            ServiceKind::Solr => "Solr",
            ServiceKind::Memcache => "Memc.",
            ServiceKind::Cassandra(YcsbClass::A) => "Cass. A",
            ServiceKind::Cassandra(YcsbClass::B) => "Cass. B",
            ServiceKind::Cassandra(YcsbClass::D) => "Cass. D",
            ServiceKind::Cassandra(YcsbClass::F) => "Cass. F",
        }
    }
}

/// Traffic pattern of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpec {
    /// LIMBO `sin1000`.
    Sin1000,
    /// LIMBO `sinnoise1000` (noisy sine).
    SinNoise1000,
    /// Several constant target levels spanning `[lo, hi]` req/s.
    Range {
        /// Lowest target rate.
        lo: f64,
        /// Highest target rate.
        hi: f64,
    },
    /// One constant target rate.
    Constant(f64),
}

impl TrafficSpec {
    /// Maximum rate of the pattern (used to size the calibration ramp).
    pub fn max_rate(&self) -> f64 {
        match self {
            TrafficSpec::Sin1000 | TrafficSpec::SinNoise1000 => 1000.0,
            TrafficSpec::Range { hi, .. } => *hi,
            TrafficSpec::Constant(r) => *r,
        }
    }

    /// Builds the load profile for a run of `duration` seconds.
    pub fn profile(&self, duration: u64, seed: u64) -> Box<dyn LoadProfile> {
        match *self {
            TrafficSpec::Sin1000 => Box::new(SineProfile::sin1000(duration)),
            TrafficSpec::SinNoise1000 => {
                Box::new(NoisyProfile::<SineProfile>::sinnoise1000(duration, seed))
            }
            TrafficSpec::Range { lo, hi } => {
                Box::new(SteppedProfile::range(lo, hi, 6, (duration / 6).max(1)))
            }
            TrafficSpec::Constant(r) => Box::new(ConstantProfile::new(r, duration)),
        }
    }

    /// Compact description as printed in Table 1.
    pub fn describe(&self) -> String {
        match self {
            TrafficSpec::Sin1000 => "sin1000".into(),
            TrafficSpec::SinNoise1000 => "sinnoise1000".into(),
            TrafficSpec::Range { lo, hi } => format!("{lo:.0}-{hi:.0} R/s"),
            TrafficSpec::Constant(r) => format!("{r:.0} R/s"),
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Row number (1-25).
    pub id: u32,
    /// Service under test.
    pub service: ServiceKind,
    /// Container limits (`CPU, MEM` column).
    pub limits: ContainerLimits,
    /// Partner row id for co-located runs (`Par` column).
    pub parallel_with: Option<u32>,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Bottleneck the paper reports for this row.
    pub expected_bottleneck: Bottleneck,
}

/// The 25 training configurations of Table 1.
pub fn table1() -> Vec<TrainingConfig> {
    use Bottleneck as B;
    use ServiceKind as S;
    use TrafficSpec as T;
    let row = |id, service, limits, parallel_with, traffic, expected_bottleneck| TrainingConfig {
        id,
        service,
        limits,
        parallel_with,
        traffic,
        expected_bottleneck,
    };
    let cl = ContainerLimits::cpu;
    let ml = ContainerLimits::memory;
    let cm = ContainerLimits::cpu_and_memory;
    let un = ContainerLimits::unlimited();
    vec![
        row(1, S::Solr, cl(3.0), None, T::Sin1000, B::ContainerCpu),
        row(2, S::Solr, un, None, T::Sin1000, B::HostCpu),
        row(3, S::Solr, ml(8.0), Some(18), T::SinNoise1000, B::IoBandwidth),
        row(4, S::Solr, ml(8.0), Some(19), T::SinNoise1000, B::IoBandwidth),
        row(5, S::Solr, cm(3.0, 8.0), Some(20), T::SinNoise1000, B::IoBandwidth),
        row(6, S::Solr, cm(1.5, 8.0), Some(22), T::SinNoise1000, B::ContainerCpu),
        row(7, S::Memcache, un, None, T::Range { lo: 2e3, hi: 50e3 }, B::MemBandwidth),
        row(8, S::Memcache, cl(1.0), None, T::Range { lo: 20e3, hi: 85e3 }, B::ContainerCpu),
        row(9, S::Memcache, ml(8.0), None, T::Range { lo: 39e3, hi: 45e3 }, B::IoQueue),
        row(10, S::Memcache, ml(4.0), Some(23), T::Range { lo: 10e3, hi: 65e3 }, B::IoQueue),
        row(
            11,
            S::Cassandra(YcsbClass::A),
            un,
            None,
            T::Range {
                lo: 30e3,
                hi: 100e3,
            },
            B::Network,
        ),
        row(12, S::Cassandra(YcsbClass::B), un, None, T::Range { lo: 20e3, hi: 70e3 }, B::HostCpu),
        row(13, S::Cassandra(YcsbClass::D), un, None, T::Range { lo: 40e3, hi: 90e3 }, B::Network),
        row(
            14,
            S::Cassandra(YcsbClass::A),
            cm(20.0, 30.0),
            None,
            T::Range {
                lo: 300.0,
                hi: 1200.0,
            },
            B::IoBandwidth,
        ),
        row(
            15,
            S::Cassandra(YcsbClass::B),
            cm(20.0, 30.0),
            None,
            T::Range {
                lo: 100.0,
                hi: 900.0,
            },
            B::IoBandwidth,
        ),
        row(
            16,
            S::Cassandra(YcsbClass::B),
            cm(20.0, 30.0),
            None,
            T::Range {
                lo: 700.0,
                hi: 1000.0,
            },
            B::IoBandwidth,
        ),
        row(
            17,
            S::Cassandra(YcsbClass::B),
            cm(20.0, 30.0),
            None,
            T::Range {
                lo: 100.0,
                hi: 1000.0,
            },
            B::IoBandwidth,
        ),
        row(
            18,
            S::Cassandra(YcsbClass::A),
            cl(6.0),
            Some(3),
            T::Range { lo: 15e3, hi: 25e3 },
            B::ContainerCpu,
        ),
        row(
            19,
            S::Cassandra(YcsbClass::B),
            cl(6.0),
            Some(4),
            T::Range { lo: 10e3, hi: 15e3 },
            B::ContainerCpu,
        ),
        row(
            20,
            S::Cassandra(YcsbClass::D),
            cl(6.0),
            Some(5),
            T::Range { lo: 10e3, hi: 25e3 },
            B::ContainerCpu,
        ),
        row(
            21,
            S::Cassandra(YcsbClass::A),
            cl(6.0),
            None,
            T::Range { lo: 5e3, hi: 20e3 },
            B::ContainerCpu,
        ),
        row(
            22,
            S::Cassandra(YcsbClass::B),
            cl(6.0),
            Some(6),
            T::Range { lo: 5e3, hi: 20e3 },
            B::ContainerCpu,
        ),
        row(23, S::Cassandra(YcsbClass::B), cl(6.0), Some(10), T::Constant(10e3), B::ContainerCpu),
        row(24, S::Cassandra(YcsbClass::F), cl(1.0), None, T::Constant(200.0), B::IoWait),
        row(25, S::Cassandra(YcsbClass::F), cl(1.0), None, T::Constant(20.0), B::IoWait),
    ]
}

/// Options controlling training-data generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingOptions {
    /// Length of each measured run in seconds.
    pub run_seconds: u64,
    /// Length of the Υ calibration ramp in seconds.
    pub ramp_seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads scheduling the calibration sims and episode
    /// batches. Every per-cell seed derives from the configuration id
    /// alone, so the assembled dataset is byte-identical for every
    /// value — `n_jobs` only changes wall time.
    pub n_jobs: usize,
}

impl TrainingOptions {
    /// Laptop-scale configuration (~3-4k samples over the 25 runs).
    pub fn quick(seed: u64) -> Self {
        TrainingOptions {
            run_seconds: 150,
            ramp_seconds: 200,
            seed,
            n_jobs: 4,
        }
    }

    /// Paper-scale configuration (~63k samples, as in Section 3.4).
    pub fn paper(seed: u64) -> Self {
        TrainingOptions {
            run_seconds: 2500,
            ramp_seconds: 600,
            seed,
            n_jobs: 8,
        }
    }
}

/// Output of [`generate_training_data`].
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// Raw 1040-metric samples with labels and group ids (group = Table 1
    /// row). Samples are chronological within each group.
    pub dataset: Dataset,
    /// Layout of the raw vectors.
    pub layout: RawLayout,
    /// Calibrated `Υ` per configuration id (`None` when the ramp never
    /// found a knee — the configuration then contributes only negative
    /// samples, which the paper's iterative-improvement loop would flag).
    pub thresholds: Vec<(u32, Option<f64>)>,
    /// Bottleneck most frequently observed while saturated, per
    /// configuration (for the Table 1 regeneration binary).
    pub observed_bottlenecks: Vec<(u32, Bottleneck)>,
    /// Overprovisioning labels (one per dataset row): 1 when the service
    /// ran far below its knee with zero failures — training targets for
    /// the Section 5 scale-in classifier.
    pub scalein_labels: Vec<u8>,
}

/// Calibrates `Υ` for one configuration by running a linear ramp against
/// an isolated instance and applying Kneedle to (offered, throughput).
pub fn calibrate_threshold(
    config: &TrainingConfig,
    opts: &TrainingOptions,
) -> Result<Option<SaturationThreshold>, Error> {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], opts.seed ^ 0xCA11);
    let (app, _) = build_single(&mut cluster, config.service.profile(), config.limits, NodeId(0));
    let ramp = RampProfile::new(1.0, config.traffic.max_rate() * 1.3, opts.ramp_seconds);
    let mut offered = Vec::new();
    let mut throughput = Vec::new();
    for t in 0..opts.ramp_seconds {
        let load = ramp.intensity(t);
        let report = cluster.step(&[(app, load)]);
        let kpi = report.kpi(app).expect("app exists");
        offered.push(load);
        throughput.push(kpi.throughput_rps);
    }
    match SaturationThreshold::calibrate(
        &offered,
        &throughput,
        &KneedleParams::default(),
        SaturationDirection::Above,
    ) {
        Ok(t) => Ok(Some(t)),
        Err(monitorless_label::Error::NoKnee) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Labels one second of application KPIs: saturated when the throughput
/// exceeds `Υ` *or* requests are failing.
///
/// The paper logs "individual response times and failed request rates …
/// every second to label the training data" (Section 3.2.1): a service
/// whose achievable throughput is pushed *below* the calibrated knee
/// (e.g. by co-located interference) still saturates — visible as
/// dropped requests rather than as throughput above `Υ`.
pub fn saturation_label(
    kpi: &monitorless_sim::AppKpi,
    threshold: Option<&monitorless_label::SaturationThreshold>,
) -> u8 {
    saturation_label_parts(kpi.throughput_rps, kpi.failure_fraction(), threshold)
}

/// [`saturation_label`] from the raw per-tick KPI scalars — the form
/// the shadow retrainer uses to label fresh episodes it recorded as
/// plain `(throughput, failure fraction)` series rather than full
/// [`monitorless_sim::AppKpi`] values.
pub fn saturation_label_parts(
    throughput_rps: f64,
    failure_fraction: f64,
    threshold: Option<&monitorless_label::SaturationThreshold>,
) -> u8 {
    let by_threshold = threshold.map_or(0, |t| t.label(throughput_rps));
    let by_failures = u8::from(failure_fraction > 0.05);
    by_threshold.max(by_failures)
}

/// Labels one second as *overprovisioned*: the service runs far below its
/// calibrated knee and nothing is failing, so it could conservatively be
/// scaled in (the additional classifier proposed in Section 5, "Using
/// monitorless for autoscaling").
pub fn overprovision_label(
    kpi: &monitorless_sim::AppKpi,
    threshold: Option<&monitorless_label::SaturationThreshold>,
) -> u8 {
    match threshold {
        Some(t) => {
            u8::from(kpi.throughput_rps < 0.25 * t.upsilon() && kpi.failure_fraction() < 1e-9)
        }
        None => 0,
    }
}

/// One episode's output channel: a disjoint region of the final
/// row-major dataset buffer plus the small per-tick side arrays. The
/// simulation writes each raw sample straight into `region` — no
/// per-row `Vec`, no assembly re-copy.
struct EpisodeSink<'a> {
    /// `region_rows * width` row-major slice of the final buffer.
    region: &'a mut [f64],
    /// Rows written so far (a tick with no observation writes none).
    rows: usize,
    labels: Vec<u8>,
    scalein_labels: Vec<u8>,
    /// Tick tally per bottleneck (saturated or non-`None` ticks only),
    /// indexed by [`Bottleneck::index`].
    bottleneck_counts: [u32; Bottleneck::COUNT],
}

/// Runs one configuration (with its partner, if any) and streams each
/// participating configuration's labeled raw samples into its sink.
fn run_configs(
    configs: &[&TrainingConfig],
    thresholds: &[Option<SaturationThreshold>],
    opts: &TrainingOptions,
    width: usize,
    sinks: &mut [EpisodeSink<'_>],
) -> Result<(), Error> {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], opts.seed);
    let mut apps: Vec<(AppId, InstanceId)> = Vec::new();
    for config in configs {
        apps.push(build_single(&mut cluster, config.service.profile(), config.limits, NodeId(0)));
    }
    let profiles: Vec<Box<dyn LoadProfile>> = configs
        .iter()
        .map(|c| {
            c.traffic
                .profile(opts.run_seconds, opts.seed ^ u64::from(c.id))
        })
        .collect();

    let mut loads: Vec<(AppId, f64)> = Vec::with_capacity(apps.len());
    for t in 0..opts.run_seconds {
        loads.clear();
        loads.extend(
            apps.iter()
                .zip(&profiles)
                .map(|((app, _), p)| (*app, p.intensity(t))),
        );
        let report = cluster.step(&loads);
        for (((app, inst), threshold), sink) in apps.iter().zip(thresholds).zip(sinks.iter_mut()) {
            let row = &mut sink.region[sink.rows * width..(sink.rows + 1) * width];
            if !report
                .observations
                .iter()
                .any(|o| o.instance_vector_write(*inst, row))
            {
                continue;
            }
            let kpi = report.kpi(*app).expect("app exists");
            let label = saturation_label(kpi, threshold.as_ref());
            sink.rows += 1;
            sink.labels.push(label);
            sink.scalein_labels
                .push(overprovision_label(kpi, threshold.as_ref()));
            let bottleneck = report
                .container(*inst)
                .map_or(Bottleneck::None, |c| c.bottleneck);
            if label == 1 || bottleneck != Bottleneck::None {
                sink.bottleneck_counts[bottleneck.index()] += 1;
            }
        }
    }
    Ok(())
}

/// Most frequent non-`None` bottleneck of a tick tally (declaration
/// order breaks ties), or `None` when nothing ever saturated.
fn dominant_bottleneck(counts: &[u32; Bottleneck::COUNT]) -> Bottleneck {
    let mut best = Bottleneck::None;
    let mut best_count = 0u32;
    for (b, &c) in Bottleneck::ALL.iter().zip(counts).skip(1) {
        if c > best_count {
            best_count = c;
            best = *b;
        }
    }
    best
}

/// The co-location batches in sequential visit order: each batch holds
/// indices into `configs`, pairs run once when visiting the lower-id
/// member. Flattening the batches yields the dataset's group order.
fn plan_batches(configs: &[TrainingConfig]) -> Vec<Vec<usize>> {
    let mut visited = vec![false; configs.len()];
    let mut batches = Vec::new();
    for i in 0..configs.len() {
        if visited[i] {
            continue;
        }
        let mut batch_idx = vec![i];
        if let Some(par) = configs[i].parallel_with {
            if let Some(j) = configs.iter().position(|c| c.id == par) {
                if !visited[j] {
                    batch_idx.push(j);
                }
            }
        }
        for &j in &batch_idx {
            visited[j] = true;
        }
        batches.push(batch_idx);
    }
    batches
}

/// Generates the full Table 1 training dataset.
///
/// The 25 calibration sims and the co-location episode batches are
/// independent, so both phases schedule over
/// [`monitorless_std::pool`]'s dynamic work queue with
/// [`TrainingOptions::n_jobs`] workers. Every seed derives from the
/// configuration id alone and results are stitched back in the
/// sequential visit order, so the assembled dataset is byte-identical
/// for every `n_jobs` (`tests/train_equivalence.rs` pins this; the
/// `table_train` bench asserts it on every run).
///
/// Episodes write their raw samples directly into disjoint regions of
/// the final row-major buffer ([`MatrixBuilder`]); no intermediate
/// per-row allocation exists on the assembly path.
///
/// # Errors
///
/// Propagates simulation/labeling errors.
pub fn generate_training_data(opts: &TrainingOptions) -> Result<TrainingData, Error> {
    let span = obs::Span::enter("training.generate");
    let configs = table1();
    let layout = RawLayout::from_catalog(&monitorless_metrics::Catalog::standard())?;
    let width = layout.names().len();
    let n_jobs = opts.n_jobs.max(1);
    let busy_us = AtomicU64::new(0);
    let wall = Instant::now();

    // Phase 1: calibrate every configuration in isolation. Ramp costs
    // vary per service, so the dynamic queue (not static chunks) keeps
    // every worker busy until the queue drains.
    let mut calibrations: Vec<Option<Result<Option<SaturationThreshold>, Error>>> =
        configs.iter().map(|_| None).collect();
    pool::for_each_item_mut(&mut calibrations, n_jobs, |i, slot| {
        let t0 = Instant::now();
        *slot = Some(calibrate_threshold(&configs[i], opts));
        busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    });
    let mut thresholds = Vec::with_capacity(configs.len());
    for slot in calibrations {
        thresholds.push(slot.expect("calibration slot filled by worker")?);
    }

    // Phase 2: plan the batches, size the dataset buffer up front and
    // hand each episode its disjoint region of the final matrix.
    let batches = plan_batches(&configs);
    let episodes: usize = batches.iter().map(Vec::len).sum();
    let run_rows = opts.run_seconds as usize;
    let mut builder = MatrixBuilder::with_regions(episodes, run_rows, width);

    let mut labels: Vec<u8> = Vec::new();
    let mut scalein_labels: Vec<u8> = Vec::new();
    let mut groups: Vec<u32> = Vec::new();
    let mut observed = Vec::new();
    let mut used_rows: Vec<usize> = Vec::with_capacity(episodes);
    {
        struct BatchJob<'a> {
            members: &'a [usize],
            sinks: Vec<EpisodeSink<'a>>,
            err: Option<Error>,
        }
        let mut regions = builder.regions_mut();
        let mut jobs: Vec<BatchJob<'_>> = batches
            .iter()
            .map(|members| BatchJob {
                members,
                sinks: members
                    .iter()
                    .map(|_| EpisodeSink {
                        region: regions.next().expect("one region per episode"),
                        rows: 0,
                        labels: Vec::with_capacity(run_rows),
                        scalein_labels: Vec::with_capacity(run_rows),
                        bottleneck_counts: [0u32; Bottleneck::COUNT],
                    })
                    .collect(),
                err: None,
            })
            .collect();

        // Phase 3: run the batches over the same dynamic queue
        // (co-located pairs cost ~2x an isolated run).
        pool::for_each_item_mut(&mut jobs, n_jobs, |_, job| {
            let t0 = Instant::now();
            let batch: Vec<&TrainingConfig> = job.members.iter().map(|&j| &configs[j]).collect();
            let batch_thresholds: Vec<Option<SaturationThreshold>> =
                job.members.iter().map(|&j| thresholds[j]).collect();
            if let Err(e) = run_configs(&batch, &batch_thresholds, opts, width, &mut job.sinks) {
                job.err = Some(e);
            }
            busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        });

        // Phase 4: stitch the outputs back in the deterministic
        // sequential order (batch visit order, partner inline after
        // its primary) — identical for every worker count.
        for job in jobs {
            if let Some(e) = job.err {
                return Err(e);
            }
            for (k, sink) in job.sinks.into_iter().enumerate() {
                let config = &configs[job.members[k]];
                observed.push((config.id, dominant_bottleneck(&sink.bottleneck_counts)));
                groups.extend(std::iter::repeat_n(config.id, sink.rows));
                labels.extend(sink.labels);
                scalein_labels.extend(sink.scalein_labels);
                used_rows.push(sink.rows);
            }
        }
    }

    let x = builder.finish(&used_rows);
    let names = layout.names().to_vec();
    let dataset = Dataset::new(x, labels, names, groups)?;
    observed.sort_by_key(|(id, _)| *id);

    drop(span);
    obs::counter_add("training.episodes", episodes as u64);
    let wall_us = wall.elapsed().as_micros().max(1) as f64;
    obs::gauge_set(
        "training.worker_utilization",
        busy_us.load(Ordering::Relaxed) as f64 / (n_jobs as f64 * wall_us),
    );

    Ok(TrainingData {
        dataset,
        layout,
        thresholds: configs
            .iter()
            .zip(&thresholds)
            .map(|(c, t)| (c.id, t.map(|t| t.upsilon())))
            .collect(),
        observed_bottlenecks: observed,
        scalein_labels,
    })
}

/// Runs one configuration in isolation for `opts.run_seconds` ticks
/// under a salted seed and returns the raw episode with its per-tick
/// KPI series — a fresh, *unlabeled* serving window of the kind a
/// drift alert flags, ready for
/// [`crate::adapt::ShadowRetrainer::label_episode`].
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_fresh_episode(
    config: &TrainingConfig,
    opts: &TrainingOptions,
    salt: u64,
) -> Result<crate::adapt::EpisodeRun, Error> {
    let layout = RawLayout::from_catalog(&monitorless_metrics::Catalog::standard())?;
    let width = layout.names().len();
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], opts.seed ^ salt);
    let (app, inst) =
        build_single(&mut cluster, config.service.profile(), config.limits, NodeId(0));
    let profile = config
        .traffic
        .profile(opts.run_seconds, opts.seed ^ salt ^ u64::from(config.id));

    let run_rows = opts.run_seconds as usize;
    let mut builder = MatrixBuilder::with_regions(1, run_rows, width);
    let mut offered_rps = Vec::with_capacity(run_rows);
    let mut throughput_rps = Vec::with_capacity(run_rows);
    let mut failure_fraction = Vec::with_capacity(run_rows);
    let mut rows = 0usize;
    {
        let mut regions = builder.regions_mut();
        let region = regions.next().expect("one region");
        for t in 0..opts.run_seconds {
            let load = profile.intensity(t);
            let report = cluster.step(&[(app, load)]);
            let row = &mut region[rows * width..(rows + 1) * width];
            if !report
                .observations
                .iter()
                .any(|o| o.instance_vector_write(inst, row))
            {
                continue;
            }
            let kpi = report.kpi(app).expect("app exists");
            rows += 1;
            offered_rps.push(load);
            throughput_rps.push(kpi.throughput_rps);
            failure_fraction.push(kpi.failure_fraction());
        }
    }
    Ok(crate::adapt::EpisodeRun {
        group: config.id,
        raw: builder.finish(&[rows]),
        offered_rps,
        throughput_rps,
        failure_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_25_rows_matching_paper_structure() {
        let t = table1();
        assert_eq!(t.len(), 25);
        assert_eq!(t[0].service, ServiceKind::Solr);
        assert_eq!(t[7].limits.cpu_cores, Some(1.0));
        assert_eq!(t[2].parallel_with, Some(18));
        // Every parallel reference resolves to an existing row.
        for c in &t {
            if let Some(p) = c.parallel_with {
                assert!(t.iter().any(|o| o.id == p), "row {} partner {p}", c.id);
            }
        }
        // Six Solr, four Memcache, fifteen Cassandra rows.
        let solr = t.iter().filter(|c| c.service == ServiceKind::Solr).count();
        let memc = t
            .iter()
            .filter(|c| c.service == ServiceKind::Memcache)
            .count();
        assert_eq!(solr, 6);
        assert_eq!(memc, 4);
        assert_eq!(t.len() - solr - memc, 15);
    }

    #[test]
    fn calibration_finds_knee_for_limited_solr() {
        let config = &table1()[0]; // Solr, 3 cores, sin1000
        let opts = TrainingOptions {
            run_seconds: 50,
            ramp_seconds: 150,
            seed: 1,
            n_jobs: 4,
        };
        let th = calibrate_threshold(config, &opts).unwrap().unwrap();
        // 3 cores / 65 ms = ~46 req/s capacity; the knee is below that.
        assert!(th.upsilon() > 10.0 && th.upsilon() < 60.0, "{}", th.upsilon());
    }

    #[test]
    fn quick_generation_produces_balanced_groups() {
        let opts = TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 2,
            n_jobs: 4,
        };
        let data = generate_training_data(&opts).unwrap();
        assert_eq!(data.dataset.n_features(), 1040);
        // 25 configurations × 40 s.
        assert_eq!(data.dataset.len(), 25 * 40);
        assert_eq!(data.dataset.distinct_groups().len(), 25);
        // A meaningful share of samples is saturated (paper: 26%).
        let pos = data.dataset.positive_fraction();
        assert!(pos > 0.05 && pos < 0.7, "positive fraction {pos}");
        // At least some thresholds were calibrated.
        let calibrated = data.thresholds.iter().filter(|(_, t)| t.is_some()).count();
        assert!(calibrated > 15, "only {calibrated} thresholds found");
    }

    #[test]
    fn traffic_specs_build_profiles() {
        for spec in [
            TrafficSpec::Sin1000,
            TrafficSpec::SinNoise1000,
            TrafficSpec::Range {
                lo: 10.0,
                hi: 100.0,
            },
            TrafficSpec::Constant(42.0),
        ] {
            let p = spec.profile(60, 1);
            assert!(p.intensity(30) >= 0.0);
            assert!(!spec.describe().is_empty());
        }
        assert_eq!(TrafficSpec::Constant(42.0).max_rate(), 42.0);
    }
}
