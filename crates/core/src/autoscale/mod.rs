//! The Section 4.2.2 autoscaling loop.
//!
//! On a saturation signal the orchestrator scales out; replicas live for
//! 120 seconds and are then scaled in again (avoiding endless
//! out-scaling). For the Table 7 comparison every policy is tied to
//! scaling the Recommender and Auth services together, and SLO
//! violations are counted per second: average response time above
//! 750 ms, any dropped request, or more than 10% failed requests.
//!
//! Beyond the paper's Table 7 loop, [`backend`] defines the
//! [`backend::ScalingBackend`] trait with reactive (HPA-style),
//! predictive (trend-extrapolating) and Monitorless model-driven
//! implementations, and [`bakeoff`] drives any backend through the
//! event-driven simulator against the hostile scenario pack in
//! `monitorless_workload::scenario`.

pub mod backend;
pub mod bakeoff;

use std::borrow::Cow;
use std::sync::Arc;

use monitorless_metrics::{InstanceId, NodeId};
use monitorless_obs as obs;
use monitorless_workload::LoadProfile;

use crate::baselines::ThresholdBaseline;
use crate::model::MonitorlessModel;
use crate::orchestrator::Orchestrator;
use crate::Error;
use monitorless_sim::apps::{build_sockshop, build_teastore};
use monitorless_sim::{Cluster, NodeSpec};

/// A scaling policy under comparison.
#[derive(Debug)]
pub enum Policy {
    /// Never scale (the worst-case reference).
    NoScaling,
    /// Monitorless predictions drive scaling.
    Monitorless(Arc<MonitorlessModel>),
    /// A static-threshold detector drives scaling.
    Threshold(ThresholdBaseline),
    /// The response-time (optimal) autoscaler: scales when the measured
    /// end-to-end response time exceeds the threshold.
    RtBased {
        /// RT trigger in milliseconds.
        rt_threshold_ms: f64,
    },
}

impl Policy {
    /// Display name matching Table 7.
    ///
    /// Borrowed for every variant except `Threshold`, whose name embeds
    /// the baseline kind — callers that label per-tick journal records
    /// should hoist the name out of the loop rather than re-format it
    /// every second.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            Policy::NoScaling => Cow::Borrowed("No Scaling (baseline)"),
            Policy::Monitorless(_) => Cow::Borrowed("monitorless"),
            Policy::Threshold(b) => Cow::Owned(format!("A-posteriori {}", b.kind)),
            Policy::RtBased { .. } => Cow::Borrowed("RT-based (optimal)"),
        }
    }
}

/// Options for [`run_teastore_autoscale`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleOptions {
    /// Run length in seconds.
    pub duration: u64,
    /// Replica lifespan in seconds (paper: 120).
    pub replica_lifespan: u64,
    /// SLO response-time limit in milliseconds (paper: 750).
    pub rt_slo_ms: f64,
    /// Background Sockshop load (req/s) for multi-tenant interference.
    pub background_rps: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl AutoscaleOptions {
    /// Laptop-scale defaults.
    pub fn quick(seed: u64) -> Self {
        AutoscaleOptions {
            duration: 600,
            replica_lifespan: 120,
            rt_slo_ms: 750.0,
            background_rps: 80.0,
            seed,
        }
    }
}

/// Outcome of one autoscaling run (a Table 7 row).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleResult {
    /// Policy name.
    pub policy: String,
    /// Average extra provisioning relative to the unscaled deployment,
    /// in percent.
    pub provisioning_pct: f64,
    /// Number of seconds violating the SLO.
    pub slo_violations: usize,
    /// Number of scale-out events.
    pub scale_out_events: usize,
    /// Run length in seconds.
    pub ticks: u64,
}

/// The services every policy is allowed to scale (Section 4.2.2 ties all
/// approaches to scaling Recommender and Auth together).
pub const SCALED_SERVICES: [&str; 2] = ["recommender", "auth"];

/// Runs the TeaStore autoscaling scenario under `policy` with the given
/// TeaStore load profile.
///
/// # Errors
///
/// Propagates orchestrator errors.
pub fn run_teastore_autoscale(
    policy: &mut Policy,
    profile: &dyn LoadProfile,
    opts: &AutoscaleOptions,
) -> Result<AutoscaleResult, Error> {
    let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()], opts.seed);
    let tea = build_teastore(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
    let sock = build_sockshop(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
    let baseline_containers = cluster.app(tea).instances().len() as f64;

    let mut orchestrator = match policy {
        Policy::Monitorless(model) => Some(Orchestrator::new(Arc::clone(model))),
        _ => None,
    };

    // Hoisted: the journal labels every per-tick decision record with
    // the policy name; formatting it inside the loop would allocate
    // every second for the Threshold variant.
    let policy_name = policy.name();

    // Active replicas: (instance, expiry-time).
    let mut replicas: Vec<(InstanceId, u64)> = Vec::new();
    let mut slo_violations = 0usize;
    let mut scale_out_events = 0usize;
    let mut provisioning_acc = 0.0;

    for t in 0..opts.duration {
        let load = profile.intensity(t);
        let report = cluster.step(&[(tea, load), (sock, opts.background_rps)]);

        // --- SLO accounting ---
        let kpi = report.kpi(tea).expect("teastore exists");
        if kpi.violates_slo(opts.rt_slo_ms) {
            slo_violations += 1;
            obs::counter_add("autoscale.slo_violations", 1);
        }
        let current = cluster.app(tea).instances().len() as f64;
        provisioning_acc += (current - baseline_containers) / baseline_containers;

        // --- detection ---
        let triggered = match policy {
            Policy::NoScaling => false,
            Policy::RtBased { rt_threshold_ms } => kpi.response_ms > *rt_threshold_ms,
            Policy::Threshold(baseline) => {
                // Flag when any instance of the scaled services crosses
                // the thresholds, using relative container utilizations.
                let mut flagged = false;
                for service in SCALED_SERVICES {
                    for inst in cluster.app(tea).instances_of(service) {
                        if let Some(tick) = report.container(inst) {
                            let util =
                                (tick.signals.cpu_util * 100.0, tick.signals.mem_util * 100.0);
                            flagged |= baseline.instance_saturated(util);
                        }
                    }
                }
                flagged
            }
            Policy::Monitorless(_) => {
                let orch = orchestrator.as_mut().expect("created above");
                let preds = orch.step(&report.observations)?;
                SCALED_SERVICES.iter().any(|service| {
                    let instances = cluster.app(tea).instances_of(service);
                    preds
                        .iter()
                        .any(|p| instances.contains(&p.instance) && p.saturated == 1)
                })
            }
        };

        // --- scale-in expired replicas ---
        replicas.retain(|&(inst, expiry)| {
            if t >= expiry {
                cluster.scale_in(inst);
                false
            } else {
                true
            }
        });

        // --- scale-out (both tied services together) ---
        if obs::trace_enabled() {
            // Stamp the decision with the prediction tick's trace id so
            // the audit trail joins observation → predict → decision.
            let trace = orchestrator.as_ref().map_or(0, |o| o.last_trace());
            obs::record(
                "autoscale.decision",
                trace,
                &[
                    ("t", t as f64),
                    ("triggered", f64::from(triggered)),
                    ("response_ms", kpi.response_ms),
                    ("containers", cluster.app(tea).instances().len() as f64),
                ],
                &[("policy", policy_name.as_ref())],
            );
        }
        if triggered {
            if replicas.is_empty() {
                for service in SCALED_SERVICES {
                    let inst = cluster.scale_out(tea, service, NodeId(1))?;
                    replicas.push((inst, t + opts.replica_lifespan));
                }
                scale_out_events += 1;
                obs::counter_add("autoscale.scale_out_events", 1);
                if obs::enabled() {
                    obs::event(
                        "autoscale.scale_out",
                        &[
                            ("t", t as f64),
                            ("load", load),
                            ("response_ms", kpi.response_ms),
                            ("containers", cluster.app(tea).instances().len() as f64),
                        ],
                    );
                }
                if obs::trace_enabled() {
                    let trace = orchestrator.as_ref().map_or(0, |o| o.last_trace());
                    obs::record(
                        "autoscale.scale_out",
                        trace,
                        &[
                            ("t", t as f64),
                            ("load", load),
                            ("containers", cluster.app(tea).instances().len() as f64),
                        ],
                        &[],
                    );
                }
            } else {
                // Still saturated: keep the replicas alive.
                for (_, expiry) in &mut replicas {
                    *expiry = t + opts.replica_lifespan;
                }
            }
        }
    }

    Ok(AutoscaleResult {
        policy: policy_name.into_owned(),
        provisioning_pct: 100.0 * provisioning_acc / opts.duration as f64,
        slo_violations,
        scale_out_events,
        ticks: opts.duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_workload::DailyPatternProfile;

    fn trace() -> DailyPatternProfile {
        DailyPatternProfile::new(80.0, 500.0, 200, 400, 3)
    }

    fn opts() -> AutoscaleOptions {
        AutoscaleOptions {
            duration: 400,
            replica_lifespan: 120,
            rt_slo_ms: 750.0,
            background_rps: 60.0,
            seed: 13,
        }
    }

    #[test]
    fn no_scaling_has_zero_provisioning_and_most_violations() {
        let mut policy = Policy::NoScaling;
        let r = run_teastore_autoscale(&mut policy, &trace(), &opts()).unwrap();
        assert_eq!(r.provisioning_pct, 0.0);
        assert_eq!(r.scale_out_events, 0);
        assert!(r.slo_violations > 0, "the trace must stress the store");
    }

    #[test]
    fn rt_based_scaling_reduces_violations() {
        let mut none = Policy::NoScaling;
        let baseline = run_teastore_autoscale(&mut none, &trace(), &opts()).unwrap();
        let mut rt = Policy::RtBased {
            rt_threshold_ms: 500.0,
        };
        let scaled = run_teastore_autoscale(&mut rt, &trace(), &opts()).unwrap();
        assert!(scaled.slo_violations < baseline.slo_violations);
        assert!(scaled.provisioning_pct > 0.0);
        assert!(scaled.scale_out_events > 0);
    }

    #[test]
    fn threshold_policy_scales_on_cpu() {
        let mut policy = Policy::Threshold(ThresholdBaseline {
            kind: crate::baselines::BaselineKind::Cpu,
            cpu_threshold: 90.0,
            mem_threshold: 100.0,
        });
        let r = run_teastore_autoscale(&mut policy, &trace(), &opts()).unwrap();
        assert!(r.scale_out_events > 0);
        assert!(r.provisioning_pct > 0.0);
    }

    #[test]
    fn policy_names_match_table7() {
        assert_eq!(Policy::NoScaling.name(), "No Scaling (baseline)");
        assert!(Policy::RtBased {
            rt_threshold_ms: 1.0
        }
        .name()
        .contains("optimal"));
    }
}
