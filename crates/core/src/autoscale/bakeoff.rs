//! The bake-off harness: one backend × one hostile scenario, driven
//! tick-for-tick through the event-driven simulator.
//!
//! Each cell builds a small cluster running one CPU-bound service
//! (calibrated to ~100 req/s per 2-core instance, matching the rate
//! units of [`monitorless_workload::scenario`]), wraps it in
//! [`EventSim`], and loops over monitoring ticks: the tick's
//! [`TickReport`] feeds the Monitorless orchestrator via
//! [`Orchestrator::step_report`], the report plus the orchestrator's
//! saturation probabilities become a [`BackendSample`], and the
//! backend's desired count is applied through cold-start-aware scale
//! events ([`EventSim::schedule_scale_out_cold`] /
//! [`EventSim::schedule_scale_in_to_zero`]).
//!
//! Per-cell metrics:
//!
//! * **SLO-violation seconds** — ticks where the app KPI violates the
//!   750 ms SLO *or* offered load finds zero ready capacity (an empty
//!   service serves nothing; the simulator reports it as simply
//!   absent, so the harness accounts those seconds explicitly).
//! * **Over-provisioned instance-seconds** — ready capacity above the
//!   analytic need `ceil(offered / per-instance capacity)`, integrated
//!   over the run.
//! * **Scaling lag p50/p99** — from the first scale-up request of a
//!   demand episode to the moment ready capacity reaches the episode's
//!   highest requested level (cancelled episodes — demand receded
//!   first — contribute no sample).
//! * **Cold-start count** and **oscillation flips** (scale-direction
//!   changes of applied actions).
//!
//! Everything is a pure function of `(backend, scenario, model,
//! options)`: two runs with the same inputs produce bit-identical
//! [`CellOutcome`]s — the determinism the `tests/bakeoff.rs` suite and
//! the CI gate both pin.

use std::sync::Arc;

use monitorless_metrics::{InstanceId, NodeId};
use monitorless_sim::{
    Cluster, ContainerLimits, EventSim, NodeSpec, ServiceProfile, ServiceRole, TickReport,
};
use monitorless_workload::scenario::Scenario;

use crate::autoscale::backend::{BackendSample, ScalingBackend};
use crate::model::MonitorlessModel;
use crate::orchestrator::Orchestrator;
use crate::Error;

/// Fixed platform parameters shared by every cell of a bake-off run.
#[derive(Debug, Clone, PartialEq)]
pub struct BakeoffOptions {
    /// SLO response-time limit, milliseconds (paper: 750).
    pub slo_ms: f64,
    /// Nodes instances spread over (round-robin).
    pub nodes: usize,
    /// CPU milliseconds per request of the scaled service — 20 ms at a
    /// 2-core limit gives the calibrated ~100 req/s per instance.
    pub cpu_ms_per_req: f64,
    /// Container CPU limit, cores.
    pub limit_cores: f64,
    /// Seconds between monitoring samples.
    pub monitor_every: u64,
    /// Cluster seed.
    pub seed: u64,
}

impl BakeoffOptions {
    /// The calibrated defaults every committed bake-off uses.
    pub fn standard(seed: u64) -> Self {
        BakeoffOptions {
            slo_ms: 750.0,
            nodes: 3,
            cpu_ms_per_req: 20.0,
            limit_cores: 2.0,
            monitor_every: 1,
            seed,
        }
    }

    /// Requests/second one instance sustains at its CPU limit.
    pub fn capacity_rps(&self) -> f64 {
        ServiceProfile::test_cpu_bound("web", self.cpu_ms_per_req)
            .cpu_capacity_rps(self.limit_cores)
    }
}

/// Head-to-head metrics for one backend × scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Backend identifier ([`ScalingBackend::name`]).
    pub backend: String,
    /// Scenario identifier ([`Scenario::name`]).
    pub scenario: String,
    /// Monitored seconds.
    pub ticks: u64,
    /// Seconds violating the SLO (KPI breach or zero-capacity).
    pub slo_violation_s: u64,
    /// Of those, seconds where offered load met zero ready instances.
    pub zero_capacity_s: u64,
    /// Ready instance-seconds above the analytic need.
    pub overprovision_inst_s: f64,
    /// Mean ready instances over the run.
    pub avg_instances: f64,
    /// Highest ready count observed.
    pub peak_instances: u64,
    /// Lowest ready count observed.
    pub min_instances: u64,
    /// Median scale-up episode lag, seconds.
    pub lag_p50_s: f64,
    /// 99th-percentile scale-up episode lag, seconds.
    pub lag_p99_s: f64,
    /// Scale-outs that paid a cold start.
    pub cold_starts: u64,
    /// Scale-direction changes.
    pub flips: u64,
    /// Scale-out actions scheduled.
    pub scale_outs: u64,
    /// Scale-in actions scheduled.
    pub scale_ins: u64,
}

monitorless_std::json_struct!(CellOutcome {
    backend,
    scenario,
    ticks,
    slo_violation_s,
    zero_capacity_s,
    overprovision_inst_s,
    avg_instances,
    peak_instances,
    min_instances,
    lag_p50_s,
    lag_p99_s,
    cold_starts,
    flips,
    scale_outs,
    scale_ins,
});

/// Runs one backend through one scenario and reports the cell metrics.
///
/// # Errors
///
/// Propagates orchestrator (feature-pipeline) errors.
pub fn run_cell(
    backend: &mut dyn ScalingBackend,
    scenario: &Scenario,
    model: &Arc<MonitorlessModel>,
    opts: &BakeoffOptions,
) -> Result<CellOutcome, Error> {
    backend.reset();
    let specs: Vec<NodeSpec> = (0..opts.nodes.max(1))
        .map(|_| NodeSpec::training_server())
        .collect();
    let mut cluster = Cluster::new(specs, opts.seed);
    let app = cluster.add_app("bakeoff");
    cluster.add_service(
        app,
        ServiceRole {
            name: "web".into(),
            profile: ServiceProfile::test_cpu_bound("web", opts.cpu_ms_per_req),
            fanout: 1.0,
            limits: ContainerLimits::cpu(opts.limit_cores),
        },
        NodeId(0),
    );
    let mut sim = EventSim::new(cluster);
    sim.set_monitor_every(opts.monitor_every);
    sim.add_workload(app, scenario.profile_box());
    let mut orch = Orchestrator::new(Arc::clone(model));
    let capacity = opts.capacity_rps();

    let mut report = TickReport::empty();
    let mut placements = 1u64; // round-robin node cursor (first instance on node 0)

    let mut out = CellOutcome {
        backend: backend.name().to_string(),
        scenario: scenario.name.to_string(),
        ticks: 0,
        slo_violation_s: 0,
        zero_capacity_s: 0,
        overprovision_inst_s: 0.0,
        avg_instances: 0.0,
        peak_instances: 0,
        min_instances: u64::MAX,
        lag_p50_s: 0.0,
        lag_p99_s: 0.0,
        cold_starts: 0,
        flips: 0,
        scale_outs: 0,
        scale_ins: 0,
    };
    let mut instance_integral = 0.0f64;
    let mut lags: Vec<u64> = Vec::new();
    // Open scale-up episode: (request time, highest desired so far).
    let mut episode: Option<(u64, u32)> = None;
    let mut last_dir = 0i8;

    while sim.time() < scenario.duration {
        report.clone_from(sim.step());
        let t = report.time;

        let ready: Vec<InstanceId> = sim.cluster().app(app).instances_of("web");
        let pending = sim.pending_count(app) as u32;
        let kpi = report.kpi(app).copied().unwrap_or_default();
        let offered = kpi.offered_rps;

        // Mean relative utilizations over ready instances.
        let (mut cpu, mut mem, mut seen) = (0.0f64, 0.0f64, 0u32);
        for &inst in &ready {
            if let Some(tick) = report.container(inst) {
                cpu += tick.signals.cpu_util * 100.0;
                mem += tick.signals.mem_util * 100.0;
                seen += 1;
            }
        }
        if seen > 0 {
            cpu /= f64::from(seen);
            mem /= f64::from(seen);
        }

        // Saturation probabilities via the PR 8 step_report bridge.
        let mut saturation = 0.0f64;
        for p in orch.step_report(&report)? {
            if ready.contains(&p.instance) {
                saturation = saturation.max(p.probability);
            }
        }

        // --- accounting ---
        let n_ready = ready.len() as u64;
        let dt = opts.monitor_every;
        out.ticks += dt;
        instance_integral += n_ready as f64 * dt as f64;
        out.peak_instances = out.peak_instances.max(n_ready);
        out.min_instances = out.min_instances.min(n_ready);
        // Offered load with no ready instance serves nobody — capacity
        // still cold-starting doesn't count.
        let zero_capacity = offered > 0.0 && n_ready == 0;
        if zero_capacity {
            out.zero_capacity_s += dt;
            out.slo_violation_s += dt;
        } else if kpi.violates_slo(opts.slo_ms) {
            out.slo_violation_s += dt;
        }
        let needed = (offered / capacity).ceil() as u64;
        if n_ready > needed {
            out.overprovision_inst_s += (n_ready - needed) as f64 * dt as f64;
        }

        // --- decision ---
        let sample = BackendSample {
            t,
            ready: n_ready as u32,
            pending,
            cpu_util_pct: cpu,
            mem_util_pct: mem,
            offered_rps: offered,
            saturation,
        };
        let mut desired = backend
            .desired(&sample)
            .clamp(scenario.min_instances, scenario.max_instances);
        // The activator: no backend can observe an empty service, so
        // offered load arriving at zero requested capacity always
        // starts one instance (the serverless activator's job).
        if sample.total() == 0 && offered > 0.0 {
            desired = desired.max(1);
        }

        let now = sim.time(); // t + monitor_every: actions land next tick
        let total = sample.total();
        if desired > total {
            let n = desired - total;
            for _ in 0..n {
                let node = NodeId((placements % opts.nodes as u64) as u32);
                placements += 1;
                sim.schedule_scale_out_cold(now, scenario.cold_start_s, app, "web", node);
            }
            out.scale_outs += u64::from(n);
            if last_dir == -1 {
                out.flips += 1;
            }
            last_dir = 1;
            episode = match episode {
                Some((t0, target)) => Some((t0, target.max(desired))),
                None => Some((t, desired)),
            };
        } else if desired < sample.ready && pending == 0 {
            let n = sample.ready - desired;
            // Newest instances first (instances_of is in creation order).
            for &inst in ready.iter().rev().take(n as usize) {
                if scenario.min_instances == 0 {
                    sim.schedule_scale_in_to_zero(now, inst);
                } else {
                    sim.schedule_scale_in(now, inst);
                }
            }
            out.scale_ins += u64::from(n);
            if last_dir == 1 {
                out.flips += 1;
            }
            last_dir = -1;
            episode = None; // demand receded before capacity landed
        }

        // Close a fulfilled scale-up episode.
        if let Some((t0, target)) = episode {
            if n_ready as u32 >= target {
                lags.push(t - t0);
                episode = None;
            }
        }
    }

    out.avg_instances = instance_integral / out.ticks.max(1) as f64;
    if out.min_instances == u64::MAX {
        out.min_instances = 0;
    }
    lags.sort_unstable();
    out.lag_p50_s = percentile(&lags, 0.50);
    out.lag_p99_s = percentile(&lags, 0.99);
    out.cold_starts = sim.stats().cold_starts;
    Ok(out)
}

/// Nearest-rank percentile of a sorted sample (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}
