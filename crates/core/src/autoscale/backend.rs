//! Pluggable autoscaling backends for the bake-off harness.
//!
//! A [`ScalingBackend`] sees one [`BackendSample`] per monitoring tick
//! — ready/pending instance counts, relative container utilizations,
//! offered load and the fleet's maximum Monitorless saturation
//! probability — and answers with the *total* instance count it wants
//! (ready plus cold-starting). Three families are provided:
//!
//! * [`ReactiveThreshold`] — an HPA-style target-utilization controller
//!   (`desired = ceil(ready · util / target)`) with a tolerance band
//!   and a scale-down stabilization window, generalizing the paper's
//!   a-posteriori [`crate::baselines::ThresholdBaseline`] to any
//!   [`BaselineKind`]. Like the real HPA it is blind above 100%
//!   utilization: a saturated container reads as "scale by ~1/target",
//!   so deep overloads are climbed in cold-start-sized steps.
//! * [`PredictiveTrend`] — least-squares linear extrapolation of the
//!   consumed capacity (util · ready, in instance-equivalents) over a
//!   rolling window, provisioning for the demand expected one horizon
//!   ahead. The horizon is naturally matched to the cold-start time.
//! * [`MonitorlessScaler`] — the paper's model-driven policy: scale
//!   out while any instance's saturation probability clears the model
//!   threshold; scale in only after a sustained calm streak, and then
//!   only down to what a utilization projection says the survivors can
//!   absorb, with a short serverless idle timeout that drains a
//!   zero-load service to zero. It keeps requesting capacity every
//!   cooldown while the signal persists, so unlike the reactive
//!   controller it is not throttled by utilization censoring during a
//!   deep overload.
//!
//! Backends never talk to the simulator directly; the harness in
//! [`crate::autoscale::bakeoff`] applies their desired counts through
//! [`monitorless_sim::EventSim`]'s cold-start-aware scale events.

use std::collections::VecDeque;

use crate::baselines::BaselineKind;

/// One monitoring tick's view of the scaled service, as a backend
/// sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendSample {
    /// Simulation time of the sample, seconds.
    pub t: u64,
    /// Instances currently serving.
    pub ready: u32,
    /// Instances requested but still cold-starting.
    pub pending: u32,
    /// Mean relative container CPU utilization over ready instances,
    /// percent (0 when no instance is ready).
    pub cpu_util_pct: f64,
    /// Mean relative container memory utilization, percent.
    pub mem_util_pct: f64,
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Maximum Monitorless saturation probability over ready instances
    /// (0 when no instance is ready).
    pub saturation: f64,
}

impl BackendSample {
    /// Ready plus pending — the capacity already requested.
    pub fn total(&self) -> u32 {
        self.ready + self.pending
    }
}

/// A scaling policy under bake-off comparison.
pub trait ScalingBackend: std::fmt::Debug + Send {
    /// Stable identifier used in reports.
    fn name(&self) -> &'static str;

    /// Desired total instance count (ready + pending) after this tick.
    /// The harness clamps to the scenario's floor/ceiling and converts
    /// the difference into scale events; returning `sample.total()`
    /// means "hold".
    fn desired(&mut self, sample: &BackendSample) -> u32;

    /// Clears rolling state so the backend can drive a fresh run.
    fn reset(&mut self);
}

/// HPA-style reactive target-utilization controller.
#[derive(Debug, Clone)]
pub struct ReactiveThreshold {
    /// Which utilization signal drives scaling.
    pub kind: BaselineKind,
    /// Target utilization, percent (HPA's `targetAverageUtilization`).
    pub target_util_pct: f64,
    /// No action while `|util/target - 1| <= tolerance` (HPA: 0.1).
    pub tolerance: f64,
    /// Scale-down only to the *maximum* recommendation of the last
    /// window (HPA's `stabilizationWindowSeconds`, default 300).
    pub down_stabilization_s: u64,
    /// Rolling `(t, recommendation)` window for down-stabilization.
    window: VecDeque<(u64, u32)>,
}

impl ReactiveThreshold {
    /// A controller with HPA-like defaults: 70% CPU target, 10%
    /// tolerance, 60 s scale-down stabilization.
    pub fn hpa_cpu() -> Self {
        ReactiveThreshold {
            kind: BaselineKind::Cpu,
            target_util_pct: 70.0,
            tolerance: 0.1,
            down_stabilization_s: 60,
            window: VecDeque::new(),
        }
    }

    /// Same controller shape with an arbitrary target (used by the
    /// tuned-vs-untuned property test).
    pub fn with_target(target_util_pct: f64) -> Self {
        ReactiveThreshold {
            target_util_pct,
            ..ReactiveThreshold::hpa_cpu()
        }
    }

    fn utilization(&self, s: &BackendSample) -> f64 {
        match self.kind {
            BaselineKind::Cpu => s.cpu_util_pct,
            BaselineKind::Mem => s.mem_util_pct,
            BaselineKind::CpuOrMem => s.cpu_util_pct.max(s.mem_util_pct),
            BaselineKind::CpuAndMem => s.cpu_util_pct.min(s.mem_util_pct),
        }
    }
}

impl ScalingBackend for ReactiveThreshold {
    fn name(&self) -> &'static str {
        "reactive_threshold"
    }

    fn desired(&mut self, s: &BackendSample) -> u32 {
        let raw = if s.ready == 0 {
            // Nothing to measure: utilization of zero instances is
            // undefined, so fall back to the presence of offered load.
            u32::from(s.offered_rps > 0.0)
        } else {
            let ratio = self.utilization(s) / self.target_util_pct;
            if (ratio - 1.0).abs() <= self.tolerance {
                s.ready
            } else {
                (s.ready as f64 * ratio).ceil() as u32
            }
        };
        self.window.push_back((s.t, raw));
        while let Some(&(t0, _)) = self.window.front() {
            if t0 + self.down_stabilization_s <= s.t {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if raw > s.total() {
            return raw; // scale up immediately
        }
        // Scale down only to the window's highest recommendation.
        let stabilized = self.window.iter().map(|&(_, d)| d).max().unwrap_or(raw);
        if stabilized < s.ready && s.pending == 0 {
            stabilized
        } else {
            s.total()
        }
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Trend-extrapolating predictive controller: fits a least-squares
/// line to the consumed capacity over a rolling window and provisions
/// for the value expected `horizon_s` ahead.
#[derive(Debug, Clone)]
pub struct PredictiveTrend {
    /// Target utilization, percent — the headroom kept over the
    /// predicted demand.
    pub target_util_pct: f64,
    /// Rolling regression window, seconds.
    pub window_s: u64,
    /// Look-ahead horizon, seconds (match to the cold-start time).
    pub horizon_s: u64,
    /// Scale-down stabilization window, seconds.
    pub down_stabilization_s: u64,
    /// `(t, demand in instance-equivalents)` samples.
    history: VecDeque<(u64, f64)>,
    /// `(t, recommendation)` window for down-stabilization.
    window: VecDeque<(u64, u32)>,
}

impl PredictiveTrend {
    /// Defaults tuned for ~10-20 s cold starts: 120 s window, 30 s
    /// horizon, 70% target, 60 s down-stabilization.
    pub fn with_horizon(horizon_s: u64) -> Self {
        PredictiveTrend {
            target_util_pct: 70.0,
            window_s: 120,
            horizon_s,
            down_stabilization_s: 60,
            history: VecDeque::new(),
            window: VecDeque::new(),
        }
    }

    /// Predicted demand (instance-equivalents) `horizon_s` from now.
    fn extrapolate(&self, now: u64) -> f64 {
        let n = self.history.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.history[0].1;
        }
        let mean_t = self.history.iter().map(|&(t, _)| t as f64).sum::<f64>() / n as f64;
        let mean_d = self.history.iter().map(|&(_, d)| d).sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut var = 0.0;
        for &(t, d) in &self.history {
            let dt = t as f64 - mean_t;
            cov += dt * (d - mean_d);
            var += dt * dt;
        }
        if var == 0.0 {
            return mean_d;
        }
        let slope = cov / var;
        (mean_d + slope * ((now + self.horizon_s) as f64 - mean_t)).max(0.0)
    }
}

impl ScalingBackend for PredictiveTrend {
    fn name(&self) -> &'static str {
        "predictive_trend"
    }

    fn desired(&mut self, s: &BackendSample) -> u32 {
        let demand = if s.ready == 0 {
            f64::from(s.offered_rps > 0.0)
        } else {
            s.ready as f64 * self.utilization_fraction(s)
        };
        self.history.push_back((s.t, demand));
        while let Some(&(t0, _)) = self.history.front() {
            if t0 + self.window_s <= s.t {
                self.history.pop_front();
            } else {
                break;
            }
        }
        let target = self.target_util_pct / 100.0;
        let predicted = self.extrapolate(s.t).max(demand);
        let raw = (predicted / target).ceil() as u32;
        self.window.push_back((s.t, raw));
        while let Some(&(t0, _)) = self.window.front() {
            if t0 + self.down_stabilization_s <= s.t {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if raw > s.total() {
            return raw;
        }
        let stabilized = self.window.iter().map(|&(_, d)| d).max().unwrap_or(raw);
        if stabilized < s.ready && s.pending == 0 {
            stabilized
        } else {
            s.total()
        }
    }

    fn reset(&mut self) {
        self.history.clear();
        self.window.clear();
    }
}

impl PredictiveTrend {
    fn utilization_fraction(&self, s: &BackendSample) -> f64 {
        s.cpu_util_pct / 100.0
    }
}

/// The Monitorless model-driven policy: the harness feeds the fleet's
/// maximum saturation probability (from
/// [`crate::orchestrator::Orchestrator::step_report`]) into
/// [`BackendSample::saturation`]; this backend scales out while that
/// probability clears the model threshold and scales in one instance at
/// a time after a sustained calm streak (the conservative bias of the
/// paper's Section 5 scale-in discussion).
#[derive(Debug, Clone)]
pub struct MonitorlessScaler {
    /// Decision threshold — scale out at `saturation >= threshold`.
    /// Take it from [`crate::model::MonitorlessModel::threshold`].
    pub threshold: f64,
    /// Calm means `saturation < threshold * calm_fraction`.
    pub calm_fraction: f64,
    /// Calm seconds before the first scale-in (paper's 120 s replica
    /// lifespan plays this role in Table 7).
    pub hold_s: u64,
    /// Seconds between consecutive scale-ins while calm persists.
    pub repeat_s: u64,
    /// Scale-in keeps projected utilization under this bar: at most
    /// `ready - ceil(util·ready / bar)` instances are removed per
    /// decision — the conservative overprovisioning test of the
    /// paper's Section 5 scale-in discussion, from platform metrics
    /// only. An idle service (util ~0) drains to the floor in one
    /// decision; a busy one refuses to shed capacity it still needs.
    pub scalein_util_bar_pct: f64,
    /// Seconds between consecutive scale-outs while saturated — the
    /// model keeps firing every tick during an overload, so this is
    /// the capacity ramp rate.
    pub up_cooldown_s: u64,
    /// Seconds of zero offered load before marching straight to zero
    /// instances — the serverless idle timeout (Knative's
    /// scale-to-zero grace period), much shorter than the calm hold
    /// because an idle service risks nothing but a cold start.
    pub idle_hold_s: u64,
    /// Instances added per scale-out decision.
    pub step: u32,
    calm_streak: u64,
    idle_streak: u64,
    last_up: Option<u64>,
    last_down: Option<u64>,
}

impl MonitorlessScaler {
    /// A scaler for a model with the given decision threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        MonitorlessScaler {
            threshold,
            calm_fraction: 0.5,
            hold_s: 60,
            repeat_s: 20,
            up_cooldown_s: 5,
            idle_hold_s: 30,
            step: 1,
            scalein_util_bar_pct: 60.0,
            calm_streak: 0,
            idle_streak: 0,
            last_up: None,
            last_down: None,
        }
    }
}

impl ScalingBackend for MonitorlessScaler {
    fn name(&self) -> &'static str {
        "monitorless"
    }

    fn desired(&mut self, s: &BackendSample) -> u32 {
        // Serverless idle path: zero offered load for idle_hold_s
        // marches straight to zero (the harness clamps to the
        // scenario floor, so min_instances > 0 keeps its floor).
        if s.offered_rps == 0.0 && s.pending == 0 {
            self.idle_streak += 1;
            if self.idle_streak >= self.idle_hold_s {
                self.last_down = Some(s.t);
                return 0;
            }
        } else {
            self.idle_streak = 0;
        }
        if s.saturation >= self.threshold {
            self.calm_streak = 0;
            let cooled = self.last_up.is_none_or(|t| t + self.up_cooldown_s <= s.t);
            if cooled {
                self.last_up = Some(s.t);
                return s.total() + self.step;
            }
            return s.total();
        }
        // Only count calm while no capacity is in flight: a booting
        // instance means the last decision has not landed yet.
        if s.saturation < self.threshold * self.calm_fraction && s.pending == 0 {
            self.calm_streak += 1;
        } else {
            self.calm_streak = 0;
        }
        let cooled = self.last_down.is_none_or(|t| t + self.repeat_s <= s.t);
        if self.calm_streak >= self.hold_s && cooled && s.ready > 0 {
            // Keep enough instances that the surviving ones stay under
            // the utilization bar; only the excess is overprovisioned.
            let keep =
                (s.cpu_util_pct * f64::from(s.ready) / self.scalein_util_bar_pct).ceil() as u32;
            if keep < s.ready {
                self.last_down = Some(s.t);
                return s.total() - (s.ready - keep);
            }
        }
        s.total()
    }

    fn reset(&mut self) {
        self.calm_streak = 0;
        self.idle_streak = 0;
        self.last_up = None;
        self.last_down = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, ready: u32, cpu: f64) -> BackendSample {
        BackendSample {
            t,
            ready,
            pending: 0,
            cpu_util_pct: cpu,
            mem_util_pct: 20.0,
            offered_rps: 100.0,
            saturation: 0.0,
        }
    }

    #[test]
    fn reactive_follows_hpa_formula() {
        let mut b = ReactiveThreshold::hpa_cpu();
        // 2 instances at 100% CPU with a 70% target → ceil(2·100/70)=3.
        assert_eq!(b.desired(&sample(0, 2, 100.0)), 3);
        // Inside the tolerance band: hold.
        b.reset();
        assert_eq!(b.desired(&sample(0, 2, 72.0)), 2);
    }

    #[test]
    fn reactive_scale_down_is_stabilized() {
        let mut b = ReactiveThreshold::hpa_cpu();
        assert_eq!(b.desired(&sample(0, 4, 100.0)), 6);
        // Utilization collapses; the 60 s window still remembers the
        // high recommendation, so no immediate scale-down.
        assert_eq!(b.desired(&sample(1, 4, 10.0)), 4);
        // Once the window ages out, the low recommendation wins.
        for t in 2..70 {
            b.desired(&sample(t, 4, 10.0));
        }
        assert!(b.desired(&sample(70, 4, 10.0)) < 4);
    }

    #[test]
    fn reactive_scales_from_zero_on_offered_load() {
        let mut b = ReactiveThreshold::hpa_cpu();
        let mut s = sample(0, 0, 0.0);
        s.offered_rps = 50.0;
        assert_eq!(b.desired(&s), 1);
        s.offered_rps = 0.0;
        b.reset();
        assert_eq!(b.desired(&s), 0);
    }

    #[test]
    fn predictive_leads_a_ramp() {
        let mut b = PredictiveTrend::with_horizon(30);
        // Demand grows ~0.05 instance-equivalents per second; after a
        // while the 30 s look-ahead provisions above the instantaneous
        // HPA answer.
        let mut last = 0;
        for t in 0..60u64 {
            let demand_pct = 40.0 + 1.0 * t as f64; // per-instance util%
            last = b.desired(&sample(t, 4, demand_pct));
        }
        // Instantaneous: ceil(4·99/70/1)=6; with the trend lead the
        // prediction covers the next 30 s of growth too.
        assert!(last >= 7, "predicted desired {last}");
    }

    #[test]
    fn monitorless_never_scales_up_below_threshold() {
        let mut b = MonitorlessScaler::with_threshold(0.4);
        for t in 0..500u64 {
            let mut s = sample(t, 3, 95.0);
            s.saturation = 0.39; // high utilization, below threshold
            let d = b.desired(&s);
            assert!(d <= s.total(), "scaled up at t={t} without a saturation signal");
        }
    }

    #[test]
    fn monitorless_scales_out_on_signal_and_in_after_calm() {
        let mut b = MonitorlessScaler::with_threshold(0.4);
        let mut s = sample(0, 2, 90.0);
        s.saturation = 0.9;
        assert_eq!(b.desired(&s), 3, "scale out on a saturation signal");
        // Calm for hold_s seconds → one conservative scale-in.
        let mut down = None;
        for t in 1..200u64 {
            let mut c = sample(t, 3, 30.0);
            c.saturation = 0.05;
            let d = b.desired(&c);
            if d < 3 {
                down = Some(t);
                break;
            }
        }
        let down = down.expect("eventually scales in");
        assert!(down >= 60, "respects the hold window (got {down})");
    }
}
