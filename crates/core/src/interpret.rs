//! Interpretability: distilling the forest into scaling rules.
//!
//! Section 5 ("Interpretability") suggests depth-restricted decision
//! trees or LIME to turn the ensemble into user-interpretable scaling
//! rules. This module implements the tree-distillation path: a shallow
//! *student* tree is trained to imitate the forest's predictions on the
//! training data; its root-to-leaf paths become human-readable rules.

use monitorless_learn::tree::{DecisionTree, DecisionTreeParams};
use monitorless_learn::Classifier;

use crate::model::MonitorlessModel;
use crate::training::TrainingData;
use crate::Error;

/// Options for [`distill`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillOptions {
    /// Depth limit of the student tree (the paper suggests
    /// "depth-restricted decision trees"; 3 gives at most 8 rules).
    pub max_depth: usize,
    /// Minimum samples per student leaf.
    pub min_samples_leaf: usize,
    /// Only leaves at least this confident become rules.
    pub min_rule_proba: f64,
}

impl Default for DistillOptions {
    fn default() -> Self {
        DistillOptions {
            max_depth: 3,
            min_samples_leaf: 10,
            min_rule_proba: 0.6,
        }
    }
}

/// A distilled explanation of the monitorless model.
#[derive(Debug, Clone)]
pub struct Distilled {
    /// The shallow student tree (predicts the forest's labels).
    pub student: DecisionTree,
    /// Human-readable scaling rules extracted from confident leaves,
    /// each suffixed with the attribution-ranked metrics that drive the
    /// teacher over the same data (`[drivers: ...]`).
    pub rules: Vec<String>,
    /// Agreement between student and forest on the training data
    /// (fraction of identical hard predictions).
    pub fidelity: f64,
    /// The teacher ensemble's globally attribution-ranked features over
    /// the training data: `(name, mean |contribution|)`, descending.
    pub drivers: Vec<(String, f64)>,
}

/// Distills a trained model into a depth-restricted rule set.
///
/// # Errors
///
/// Propagates pipeline/learner errors; [`Error::Invalid`] when the forest
/// predicts a single class on the training data (nothing to distill).
pub fn distill(
    model: &MonitorlessModel,
    data: &TrainingData,
    opts: &DistillOptions,
) -> Result<Distilled, Error> {
    // Teacher labels: the forest's own (thresholded) predictions over the
    // transformed training features.
    let x = model
        .pipeline()
        .transform_batch(data.dataset.x(), data.dataset.groups())?;
    let teacher = model.forest().predict_with_threshold(&x, model.threshold());
    let positives = teacher.iter().filter(|&&l| l == 1).count();
    if positives == 0 || positives == teacher.len() {
        return Err(Error::Invalid("forest predicts a single class; nothing to distill".into()));
    }

    let mut student = DecisionTree::new(DecisionTreeParams {
        max_depth: Some(opts.max_depth),
        min_samples_leaf: opts.min_samples_leaf,
        ..DecisionTreeParams::default()
    });
    student.fit(&x, &teacher, None)?;

    let agree = student
        .predict(&x)
        .iter()
        .zip(&teacher)
        .filter(|(a, b)| a == b)
        .count();
    let fidelity = agree as f64 / teacher.len() as f64;

    let names: Vec<String> = model.pipeline().feature_names().to_vec();

    // Rank the teacher's features by mean |attribution| over the same
    // data the rules were distilled from, and cite the top drivers in
    // every rule: the student names the split thresholds, the citation
    // names the metrics the *ensemble* actually leans on.
    let mean_abs = model.flat().mean_abs_attribution(&x);
    let top = monitorless_learn::top_k_contributions(&mean_abs, 3);
    let mut drivers: Vec<(String, f64)> = mean_abs
        .into_iter()
        .enumerate()
        .map(|(f, w)| (names[f].clone(), w))
        .collect();
    drivers.sort_by(|a, b| b.1.total_cmp(&a.1));
    let citation = if top.is_empty() {
        String::new()
    } else {
        let cited: Vec<String> = top
            .iter()
            .map(|&(f, w)| format!("{} ({w:.3})", names[f]))
            .collect();
        format!("  [drivers: {}]", cited.join(", "))
    };
    let rules = student
        .decision_rules(&names, opts.min_rule_proba)
        .into_iter()
        .map(|r| format!("{r}{citation}"))
        .collect();
    Ok(Distilled {
        student,
        rules,
        fidelity,
        drivers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn distilled_rules_are_faithful_and_readable() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 501,
            n_jobs: 4,
        })
        .unwrap();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let distilled = distill(&model, &data, &DistillOptions::default()).unwrap();
        assert!(distilled.fidelity > 0.85, "student fidelity {} too low", distilled.fidelity);
        assert!(!distilled.rules.is_empty(), "no rules extracted");
        assert!(distilled.rules.len() <= 8, "depth 3 gives at most 8 rules");
        for rule in &distilled.rules {
            assert!(rule.starts_with("IF "), "{rule}");
            assert!(rule.contains("THEN saturated"), "{rule}");
            assert!(rule.contains("[drivers: "), "rule lacks attribution citation: {rule}");
        }
        assert!(distilled.student.depth() <= 3);
        // Drivers are ranked descending and cover every pipeline feature.
        assert_eq!(distilled.drivers.len(), model.pipeline().output_width());
        assert!(distilled.drivers.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(distilled.drivers[0].1 > 0.0, "top driver must carry weight");
        // The top-ranked driver is the one cited first in each rule.
        assert!(
            distilled.rules[0].contains(&distilled.drivers[0].0),
            "top driver {:?} not cited in {:?}",
            distilled.drivers[0].0,
            distilled.rules[0]
        );
    }

    #[test]
    fn deeper_students_are_at_least_as_faithful() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 503,
            n_jobs: 4,
        })
        .unwrap();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let shallow = distill(
            &model,
            &data,
            &DistillOptions {
                max_depth: 1,
                ..DistillOptions::default()
            },
        )
        .unwrap();
        let deep = distill(
            &model,
            &data,
            &DistillOptions {
                max_depth: 5,
                ..DistillOptions::default()
            },
        )
        .unwrap();
        assert!(deep.fidelity + 1e-9 >= shallow.fidelity);
    }
}
