//! Online inference: the orchestrator of Figure 1.
//!
//! The orchestrator receives per-node observations every second, keeps a
//! rolling feature window per container, predicts saturation per
//! instance and aggregates instance predictions to application level
//! with a logical OR (Section 4).

use std::collections::HashMap;
use std::sync::Arc;

use monitorless_metrics::{InstanceId, Observation};
use monitorless_obs as obs;

use crate::features::InstanceTransformer;
use crate::model::MonitorlessModel;
use crate::Error;

/// How instance predictions are combined into an application
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Any saturated instance saturates the application (the paper's
    /// choice — right for scaling decisions).
    #[default]
    Or,
    /// All instances must be saturated.
    And,
    /// More than half of the instances must be saturated.
    Majority,
}

impl Aggregation {
    /// Combines instance-level boolean predictions.
    pub fn combine(self, predictions: &[u8]) -> u8 {
        if predictions.is_empty() {
            return 0;
        }
        let pos = predictions.iter().filter(|&&p| p == 1).count();
        let result = match self {
            Aggregation::Or => pos > 0,
            Aggregation::And => pos == predictions.len(),
            Aggregation::Majority => 2 * pos > predictions.len(),
        };
        u8::from(result)
    }
}

/// Per-instance prediction for one second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstancePrediction {
    /// The instance.
    pub instance: InstanceId,
    /// Saturation probability.
    pub probability: f64,
    /// Thresholded label.
    pub saturated: u8,
}

/// The online orchestrator.
#[derive(Debug)]
pub struct Orchestrator {
    model: Arc<MonitorlessModel>,
    transformers: HashMap<InstanceId, InstanceTransformer>,
}

impl Orchestrator {
    /// Creates an orchestrator around a trained model.
    pub fn new(model: Arc<MonitorlessModel>) -> Self {
        Orchestrator {
            model,
            transformers: HashMap::new(),
        }
    }

    /// The model driving predictions.
    pub fn model(&self) -> &Arc<MonitorlessModel> {
        &self.model
    }

    /// Number of instances currently tracked.
    pub fn tracked_instances(&self) -> usize {
        self.transformers.len()
    }

    /// Ingests one second of observations from all nodes and returns
    /// per-instance predictions. Rolling windows for instances that
    /// disappeared (scale-in) are dropped; new instances start cold.
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline errors.
    pub fn step(&mut self, observations: &[Observation]) -> Result<Vec<InstancePrediction>, Error> {
        let mut live: Vec<InstanceId> = Vec::new();
        let mut predictions = Vec::new();
        for obs in observations {
            for instance in obs.instances() {
                live.push(instance);
                let raw = obs
                    .instance_vector(instance)
                    .expect("instance listed by the observation");
                let transformer = self
                    .transformers
                    .entry(instance)
                    .or_insert_with(|| self.model.transformer());
                let predict_span = obs::Span::enter("orchestrator.predict");
                let features = transformer.push(&raw)?;
                let (probability, saturated) = self.model.predict_features(features);
                drop(predict_span);
                obs::counter_add("orchestrator.predictions", 1);
                if saturated == 1 {
                    obs::counter_add("orchestrator.predicted_saturated", 1);
                }
                predictions.push(InstancePrediction {
                    instance,
                    probability,
                    saturated,
                });
            }
        }
        self.transformers.retain(|id, _| live.contains(id));
        Ok(predictions)
    }

    /// Aggregates predictions for the given application instances.
    pub fn application_prediction(
        predictions: &[InstancePrediction],
        app_instances: &[InstanceId],
        aggregation: Aggregation,
    ) -> u8 {
        let labels: Vec<u8> = predictions
            .iter()
            .filter(|p| app_instances.contains(&p.instance))
            .map(|p| p.saturated)
            .collect();
        let combined = aggregation.combine(&labels);
        if combined == 1 {
            obs::counter_add("orchestrator.agg.saturated", 1);
        } else {
            obs::counter_add("orchestrator.agg.healthy", 1);
        }
        combined
    }
}

/// A monitoring-pipeline handle: per-node agents (producer threads) send
/// observations over a bounded channel; a dedicated orchestrator thread
/// transforms, predicts and publishes per-second prediction batches —
/// the deployment shape of the paper's Figure 1, where agents on every
/// node feed one central orchestrator.
#[derive(Debug)]
pub struct StreamingOrchestrator {
    observation_tx: monitorless_std::channel::Sender<Observation>,
    prediction_rx: monitorless_std::channel::Receiver<TickPredictions>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// One second's worth of predictions published by the streaming
/// orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub struct TickPredictions {
    /// The second these observations belong to.
    pub time: u64,
    /// Per-instance predictions across all nodes that reported.
    pub predictions: Vec<InstancePrediction>,
}

impl StreamingOrchestrator {
    /// Spawns the orchestrator thread. `nodes` is the number of agents
    /// expected to report each second: a tick's predictions are published
    /// once observations for that second have arrived from every node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn spawn(model: Arc<MonitorlessModel>, nodes: usize) -> Self {
        assert!(nodes > 0, "at least one node must report");
        let (observation_tx, observation_rx) =
            monitorless_std::channel::bounded::<Observation>(nodes * 4);
        let (prediction_tx, prediction_rx) = monitorless_std::channel::unbounded();
        let worker = std::thread::spawn(move || {
            let mut orchestrator = Orchestrator::new(model);
            let mut pending: HashMap<u64, Vec<Observation>> = HashMap::new();
            while let Ok(obs) = observation_rx.recv() {
                let t = obs.time;
                let batch = pending.entry(t).or_default();
                batch.push(obs);
                if batch.len() == nodes {
                    let batch = pending.remove(&t).expect("inserted above");
                    match orchestrator.step(&batch) {
                        Ok(predictions) => {
                            if prediction_tx
                                .send(TickPredictions {
                                    time: t,
                                    predictions,
                                })
                                .is_err()
                            {
                                break; // receiver dropped
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
        });
        StreamingOrchestrator {
            observation_tx,
            prediction_rx,
            worker: Some(worker),
        }
    }

    /// Channel on which node agents submit observations.
    pub fn observations(&self) -> &monitorless_std::channel::Sender<Observation> {
        &self.observation_tx
    }

    /// Channel delivering completed prediction ticks.
    pub fn predictions(&self) -> &monitorless_std::channel::Receiver<TickPredictions> {
        &self.prediction_rx
    }

    /// Closes the observation channel and joins the worker thread,
    /// returning any prediction ticks still queued.
    pub fn shutdown(mut self) -> Vec<TickPredictions> {
        // Replace (and thereby drop) our sender so the worker drains and
        // exits, then join it before collecting the queued ticks.
        let (dead_tx, _) = monitorless_std::channel::bounded(1);
        let _ = std::mem::replace(&mut self.observation_tx, dead_tx);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let mut rest = Vec::new();
        while let Ok(tick) = self.prediction_rx.try_recv() {
            rest.push(tick);
        }
        rest
    }
}

impl Drop for StreamingOrchestrator {
    fn drop(&mut self) {
        // Close our sender so the worker exits once all clones are gone;
        // the handle is detached rather than joined (C-DTOR-BLOCK) — use
        // [`StreamingOrchestrator::shutdown`] for a clean teardown.
        let (dead_tx, _) = monitorless_std::channel::bounded(1);
        let _ = std::mem::replace(&mut self.observation_tx, dead_tx);
        drop(self.worker.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};
    use monitorless_metrics::NodeId;
    use monitorless_sim::apps::build_single;
    use monitorless_sim::{Cluster, ContainerLimits, NodeSpec, ServiceProfile};

    fn trained_model() -> Arc<MonitorlessModel> {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 7,
        })
        .unwrap();
        Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap())
    }

    #[test]
    fn aggregation_rules() {
        assert_eq!(Aggregation::Or.combine(&[0, 0, 1]), 1);
        assert_eq!(Aggregation::Or.combine(&[0, 0]), 0);
        assert_eq!(Aggregation::And.combine(&[1, 1]), 1);
        assert_eq!(Aggregation::And.combine(&[1, 0]), 0);
        assert_eq!(Aggregation::Majority.combine(&[1, 1, 0]), 1);
        assert_eq!(Aggregation::Majority.combine(&[1, 0]), 0);
        assert_eq!(Aggregation::Or.combine(&[]), 0);
    }

    #[test]
    fn orchestrator_tracks_and_forgets_instances() {
        let model = trained_model();
        let mut orch = Orchestrator::new(model);
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 9);
        let (app, _) = build_single(
            &mut cluster,
            ServiceProfile::test_cpu_bound("svc", 10.0),
            ContainerLimits::cpu(1.0),
            NodeId(0),
        );
        let report = cluster.step(&[(app, 10.0)]);
        let preds = orch.step(&report.observations).unwrap();
        assert_eq!(preds.len(), 1);
        assert_eq!(orch.tracked_instances(), 1);
        assert!((0.0..=1.0).contains(&preds[0].probability));
        // Scale out: second instance appears next tick.
        cluster.scale_out(app, "svc", NodeId(0)).unwrap();
        let report = cluster.step(&[(app, 10.0)]);
        let preds = orch.step(&report.observations).unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(orch.tracked_instances(), 2);
    }

    #[test]
    fn streaming_orchestrator_collates_nodes_per_tick() {
        let model = trained_model();
        // Two nodes, two services.
        let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2()], 19);
        let app = cluster.add_app("dist");
        for (name, node) in [("front", NodeId(0)), ("back", NodeId(1))] {
            cluster.add_service(
                app,
                monitorless_sim::ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 10.0),
                    fanout: 1.0,
                    limits: ContainerLimits::cpu(1.0),
                },
                node,
            );
        }
        let streaming = StreamingOrchestrator::spawn(model, 2);
        for _ in 0..5 {
            let report = cluster.step(&[(app, 20.0)]);
            for obs in report.observations {
                streaming.observations().send(obs).unwrap();
            }
        }
        let mut ticks = Vec::new();
        for _ in 0..5 {
            ticks.push(
                streaming
                    .predictions()
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .unwrap(),
            );
        }
        // Ticks arrive in order with predictions from both nodes.
        for (i, tick) in ticks.iter().enumerate() {
            assert_eq!(tick.time, i as u64);
            assert_eq!(tick.predictions.len(), 2);
        }
        let rest = streaming.shutdown();
        assert!(rest.is_empty());
    }

    #[test]
    fn streaming_orchestrator_drop_does_not_block() {
        let model = trained_model();
        let streaming = StreamingOrchestrator::spawn(model, 1);
        drop(streaming); // must return promptly without panicking
    }

    #[test]
    fn application_prediction_uses_only_app_instances() {
        let preds = vec![
            InstancePrediction {
                instance: InstanceId(0),
                probability: 0.9,
                saturated: 1,
            },
            InstancePrediction {
                instance: InstanceId(1),
                probability: 0.1,
                saturated: 0,
            },
        ];
        // Application B contains only the healthy instance.
        let a = Orchestrator::application_prediction(&preds, &[InstanceId(0)], Aggregation::Or);
        let b = Orchestrator::application_prediction(&preds, &[InstanceId(1)], Aggregation::Or);
        assert_eq!(a, 1);
        assert_eq!(b, 0);
    }
}
