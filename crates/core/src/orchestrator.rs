//! Online inference: the orchestrator of Figure 1.
//!
//! The orchestrator receives per-node observations every second, keeps a
//! rolling feature window per container, predicts saturation per
//! instance and aggregates instance predictions to application level
//! with a logical OR (Section 4).
//!
//! [`Orchestrator::step`] serves the whole fleet in one pass per tick:
//! a gather phase writes every instance's transformed feature row into
//! one reused row-major matrix ([`InstanceTransformer::push_into`] with
//! a single shared [`TransformScratch`]), one blocked
//! [`FlatEnsemble::predict_rows_into`][flat] call scores the matrix
//! (sharded over the worker pool when [`Orchestrator::set_n_jobs`] asks
//! for it), and a fan-out phase turns the probability vector back into
//! per-instance decisions, journal records and drift checks. The
//! retired per-instance loop survives as [`Orchestrator::step_legacy`]
//! — the reference the batched path is proven bit-identical against
//! (`tests/tick_equivalence.rs`, `table_tick`).
//!
//! [flat]: monitorless_learn::FlatEnsemble::predict_rows_into
//!
//! Beyond predicting, [`Orchestrator::step`] is the seam where model
//! observability hangs off the serving loop:
//!
//! * every tick mints a trace id (when tracing is on — see
//!   [`monitorless_obs::TraceMode`]) and journals observation ingest,
//!   each prediction (with its top-k feature attribution for saturated
//!   calls) and drift alerts under that id, so one `trace_id` joins a
//!   raw observation to the autoscaler decision it caused;
//! * every transformed feature row is fed to the model's streaming
//!   [`DriftDetector`], so a serving distribution that wanders from the
//!   training profile raises `drift.alerts` without any extra plumbing
//!   at the call site;
//! * the per-tick scratch buffers (feature row, prediction vector,
//!   attribution vector) are owned by the orchestrator and reused
//!   across ticks — with tracing off, a steady-state tick performs no
//!   allocation (`table_obs` asserts this).

use std::collections::HashMap;
use std::sync::Arc;

use monitorless_metrics::{InstanceId, Observation};
use monitorless_obs as obs;

use crate::drift::{DriftConfig, DriftDetector};
use crate::features::{InstanceTransformer, TransformScratch};
use crate::model::MonitorlessModel;
use crate::Error;
use monitorless_sim::TickReport;

/// How instance predictions are combined into an application
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Any saturated instance saturates the application (the paper's
    /// choice — right for scaling decisions).
    #[default]
    Or,
    /// All instances must be saturated.
    And,
    /// More than half of the instances must be saturated.
    Majority,
}

impl Aggregation {
    /// Combines instance-level boolean predictions.
    pub fn combine(self, predictions: &[u8]) -> u8 {
        if predictions.is_empty() {
            return 0;
        }
        let pos = predictions.iter().filter(|&&p| p == 1).count();
        let result = match self {
            Aggregation::Or => pos > 0,
            Aggregation::And => pos == predictions.len(),
            Aggregation::Majority => 2 * pos > predictions.len(),
        };
        u8::from(result)
    }
}

/// Per-instance prediction for one second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstancePrediction {
    /// The instance.
    pub instance: InstanceId,
    /// Saturation probability.
    pub probability: f64,
    /// Thresholded label.
    pub saturated: u8,
}

/// The online orchestrator.
#[derive(Debug)]
pub struct Orchestrator {
    model: Arc<MonitorlessModel>,
    transformers: HashMap<InstanceId, InstanceTransformer>,
    /// Streaming drift detector over the serving feature rows (`None`
    /// when the model predates drift profiles).
    drift: Option<DriftDetector>,
    /// Trace id minted for the most recent tick (0 when tracing is off).
    last_trace: u64,
    /// Worker shards for the fleet predict pass (1 = in-thread).
    n_jobs: usize,
    // Per-tick scratch, reused across ticks (zero-alloc steady state).
    live: Vec<InstanceId>,
    predictions: Vec<InstancePrediction>,
    raw: Vec<f64>,
    contrib: Vec<f64>,
    /// Row-major fleet feature matrix, one row per live instance.
    fleet: Vec<f64>,
    /// One probability per fleet row.
    probs: Vec<f64>,
    /// Stage-1–3 working space shared by every instance's transformer.
    scratch: TransformScratch,
}

/// Journal label keys for the top-k attribution of one prediction.
const TOP_K_KEYS: [&str; 3] = ["top1", "top2", "top3"];

impl Orchestrator {
    /// Creates an orchestrator around a trained model, with drift
    /// detection at [`DriftConfig::default`] when the model carries a
    /// reference profile.
    pub fn new(model: Arc<MonitorlessModel>) -> Self {
        Self::with_drift_config(model, DriftConfig::default())
    }

    /// [`Orchestrator::new`] with explicit drift-detector tuning.
    pub fn with_drift_config(model: Arc<MonitorlessModel>, config: DriftConfig) -> Self {
        let drift = model.drift_detector(config);
        let n_features = model.flat().n_features();
        let scratch = TransformScratch::for_pipeline(model.pipeline());
        Orchestrator {
            model,
            transformers: HashMap::new(),
            drift,
            last_trace: 0,
            n_jobs: 1,
            live: Vec::new(),
            predictions: Vec::new(),
            raw: Vec::new(),
            contrib: vec![0.0; n_features],
            fleet: Vec::new(),
            probs: Vec::new(),
            scratch,
        }
    }

    /// Sets the number of pool workers the fleet predict pass shards
    /// over (default 1, in-thread). Probabilities are bit-identical for
    /// every value; >1 trades the single-threaded tick's zero-alloc
    /// guarantee for wall-clock on large fleets.
    pub fn set_n_jobs(&mut self, n_jobs: usize) {
        self.n_jobs = n_jobs.max(1);
    }

    /// The model driving predictions.
    pub fn model(&self) -> &Arc<MonitorlessModel> {
        &self.model
    }

    /// Number of instances currently tracked.
    pub fn tracked_instances(&self) -> usize {
        self.transformers.len()
    }

    /// The streaming drift detector, when the model carries a profile.
    pub fn drift(&self) -> Option<&DriftDetector> {
        self.drift.as_ref()
    }

    /// Trace id of the most recent tick (0 when tracing is off or no
    /// tick has run) — downstream consumers (the autoscaler) stamp their
    /// decision records with it to join the tick's causal chain.
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    /// Ingests one second of observations from all nodes and returns
    /// per-instance predictions (borrowed from internal scratch, valid
    /// until the next call). Rolling windows for instances that
    /// disappeared (scale-in) are dropped; new instances start cold.
    ///
    /// One tick is three phases over the whole fleet: gather every
    /// instance's feature row into the reused fleet matrix, score the
    /// matrix with one blocked ensemble pass, then fan the probability
    /// vector back out to decisions, journal records and drift checks
    /// in gather order — so records, counters and alerts arrive in the
    /// exact sequence the per-instance loop
    /// ([`Orchestrator::step_legacy`]) produced, and every probability
    /// is bit-identical to it. With tracing off and `n_jobs` 1, a
    /// steady-state tick performs no heap allocation (`table_tick`
    /// asserts this).
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline errors.
    pub fn step(&mut self, observations: &[Observation]) -> Result<&[InstancePrediction], Error> {
        self.live.clear();
        self.predictions.clear();
        let tracing = obs::trace_enabled();
        let trace = if tracing { obs::next_trace() } else { 0 };
        self.last_trace = trace;
        let _scope = tracing.then(|| obs::enter_trace(trace));
        if tracing {
            obs::record(
                "orchestrator.observe",
                trace,
                &[
                    ("time", observations.first().map_or(-1.0, |o| o.time as f64)),
                    ("nodes", observations.len() as f64),
                ],
                &[],
            );
        }
        let width = self.model.pipeline().output_width();
        let total: usize = observations.iter().map(Observation::n_instances).sum();
        // Steady state the fleet buffers are already at capacity and
        // these resizes touch lengths only.
        self.fleet.resize(total * width, 0.0);
        self.probs.resize(total, 0.0);
        // Phase 1: gather — one transformed feature row per instance,
        // written straight into the fleet matrix.
        let gather_span = obs::Span::enter("orchestrator.gather");
        let mut row = 0usize;
        for observation in observations {
            for i in 0..observation.n_instances() {
                let instance = observation.instance_vector_at(i, &mut self.raw);
                self.live.push(instance);
                let transformer = self
                    .transformers
                    .entry(instance)
                    .or_insert_with(|| self.model.transformer());
                let out = &mut self.fleet[row * width..(row + 1) * width];
                transformer.push_into(&self.raw, &mut self.scratch, out)?;
                row += 1;
            }
        }
        debug_assert_eq!(row, total, "every observation entry gathered");
        drop(gather_span);
        // Phase 2: one blocked lockstep pass over the whole fleet.
        let predict_span = obs::Span::enter("orchestrator.predict");
        self.model.predict_fleet_into(
            &self.fleet[..total * width],
            &mut self.probs[..total],
            self.n_jobs,
        );
        drop(predict_span);
        // Phase 3: fan out, in gather order.
        for (k, &instance) in self.live.iter().enumerate() {
            let probability = self.probs[k];
            let saturated = self.model.decide(probability);
            let features = &self.fleet[k * width..(k + 1) * width];
            obs::counter_add("orchestrator.predictions", 1);
            if saturated == 1 {
                obs::counter_add("orchestrator.predicted_saturated", 1);
            }
            if tracing {
                Self::journal_prediction(
                    &self.model,
                    &mut self.contrib,
                    trace,
                    instance,
                    features,
                    probability,
                    saturated,
                );
            }
            if let Some(det) = self.drift.as_mut() {
                if let Some(check) = det.push(features) {
                    Self::journal_drift_check(&self.model, det, trace, &check);
                }
            }
            self.predictions.push(InstancePrediction {
                instance,
                probability,
                saturated,
            });
        }
        let live = &self.live;
        self.transformers.retain(|id, _| live.contains(id));
        Ok(&self.predictions)
    }

    /// Ingests a simulator tick directly: feeds the report's observation
    /// stream to [`Orchestrator::step`]. This is the natural coupling
    /// with [`monitorless_sim::EventSim`], whose [`TickReport`]s arrive
    /// only at monitoring boundaries.
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline errors.
    pub fn step_report(&mut self, report: &TickReport) -> Result<&[InstancePrediction], Error> {
        self.step(&report.observations)
    }

    /// The original per-instance serving loop — transform one instance,
    /// predict one row, journal, repeat — retained as the reference
    /// [`Orchestrator::step`] is proven bit-identical against
    /// (probabilities, decisions, drift alerts and journal record
    /// sequence). Maintains the same rolling windows and drift state,
    /// so the two paths cannot be interleaved on one orchestrator —
    /// build twins from the same model to compare.
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline errors.
    pub fn step_legacy(
        &mut self,
        observations: &[Observation],
    ) -> Result<&[InstancePrediction], Error> {
        self.live.clear();
        self.predictions.clear();
        let tracing = obs::trace_enabled();
        let trace = if tracing { obs::next_trace() } else { 0 };
        self.last_trace = trace;
        let _scope = tracing.then(|| obs::enter_trace(trace));
        if tracing {
            obs::record(
                "orchestrator.observe",
                trace,
                &[
                    ("time", observations.first().map_or(-1.0, |o| o.time as f64)),
                    ("nodes", observations.len() as f64),
                ],
                &[],
            );
        }
        for observation in observations {
            for instance in observation.instances() {
                self.live.push(instance);
                let ok = observation.instance_vector_into(instance, &mut self.raw);
                debug_assert!(ok, "instance listed by the observation");
                let transformer = self
                    .transformers
                    .entry(instance)
                    .or_insert_with(|| self.model.transformer());
                let predict_span = obs::Span::enter("orchestrator.predict");
                let features = transformer.push(&self.raw)?;
                let (probability, saturated) = self.model.predict_features(features);
                drop(predict_span);
                obs::counter_add("orchestrator.predictions", 1);
                if saturated == 1 {
                    obs::counter_add("orchestrator.predicted_saturated", 1);
                }
                if tracing {
                    Self::journal_prediction(
                        &self.model,
                        &mut self.contrib,
                        trace,
                        instance,
                        features,
                        probability,
                        saturated,
                    );
                }
                if let Some(det) = self.drift.as_mut() {
                    if let Some(check) = det.push(features) {
                        Self::journal_drift_check(&self.model, det, trace, &check);
                    }
                }
                self.predictions.push(InstancePrediction {
                    instance,
                    probability,
                    saturated,
                });
            }
        }
        let live = &self.live;
        self.transformers.retain(|id, _| live.contains(id));
        Ok(&self.predictions)
    }

    /// Journals one prediction with its top-k feature attribution
    /// (saturated calls only — the audit question is "which platform
    /// metrics drove this saturated call").
    fn journal_prediction(
        model: &MonitorlessModel,
        contrib: &mut [f64],
        trace: u64,
        instance: InstanceId,
        features: &[f64],
        probability: f64,
        saturated: u8,
    ) {
        let mut labels: Vec<(&'static str, String)> = Vec::new();
        if saturated == 1 {
            let attributed = model.flat().predict_row_attributed(features, contrib);
            debug_assert_eq!(
                attributed.to_bits(),
                probability.to_bits(),
                "attributed walk must be bit-identical"
            );
            let names = model.pipeline().feature_names();
            let top = monitorless_learn::top_k_contributions(contrib, TOP_K_KEYS.len());
            for (slot, (feature, delta)) in TOP_K_KEYS.iter().copied().zip(top) {
                labels.push((slot, format!("{}:{delta:+.4}", names[feature])));
            }
        }
        let labels: Vec<(&'static str, &str)> =
            labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        obs::record(
            "orchestrator.predict",
            trace,
            &[
                ("instance", instance.0 as f64),
                ("probability", probability),
                ("saturated", saturated as f64),
            ],
            &labels,
        );
    }

    /// Journals drift-alert transitions and streams them as discrete
    /// events; steady-state checks journal nothing.
    fn journal_drift_check(
        model: &MonitorlessModel,
        det: &DriftDetector,
        trace: u64,
        check: &crate::drift::DriftCheck,
    ) {
        for &feature in &check.new_alerts {
            let names = model.pipeline().feature_names();
            let name = names.get(feature).map_or("?", |n| n.as_str());
            let (stream_mean, stream_std) = det.stream_stats(feature);
            let reference = &det.profile().features[feature];
            obs::record(
                "drift.alert",
                trace,
                &[
                    ("feature_index", feature as f64),
                    ("psi", det.scores()[feature]),
                    ("stream_mean", stream_mean),
                    ("stream_std", stream_std),
                    ("ref_mean", reference.mean),
                    ("ref_std", reference.std),
                ],
                &[("feature", name)],
            );
            obs::event(
                "drift.alert",
                &[
                    ("feature_index", feature as f64),
                    ("psi", det.scores()[feature]),
                ],
            );
        }
    }

    /// Aggregates predictions for the given application instances.
    pub fn application_prediction(
        predictions: &[InstancePrediction],
        app_instances: &[InstanceId],
        aggregation: Aggregation,
    ) -> u8 {
        let labels: Vec<u8> = predictions
            .iter()
            .filter(|p| app_instances.contains(&p.instance))
            .map(|p| p.saturated)
            .collect();
        let combined = aggregation.combine(&labels);
        if combined == 1 {
            obs::counter_add("orchestrator.agg.saturated", 1);
        } else {
            obs::counter_add("orchestrator.agg.healthy", 1);
        }
        combined
    }
}

/// A monitoring-pipeline handle: per-node agents (producer threads) send
/// observations over a bounded channel; a dedicated orchestrator thread
/// transforms, predicts and publishes per-second prediction batches —
/// the deployment shape of the paper's Figure 1, where agents on every
/// node feed one central orchestrator.
#[derive(Debug)]
pub struct StreamingOrchestrator {
    observation_tx: monitorless_std::channel::Sender<Observation>,
    prediction_rx: monitorless_std::channel::Receiver<TickPredictions>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// One second's worth of predictions published by the streaming
/// orchestrator.
#[derive(Debug, Clone, PartialEq)]
pub struct TickPredictions {
    /// The second these observations belong to.
    pub time: u64,
    /// Per-instance predictions across all nodes that reported.
    pub predictions: Vec<InstancePrediction>,
}

impl StreamingOrchestrator {
    /// Spawns the orchestrator thread. `nodes` is the number of agents
    /// expected to report each second: a tick's predictions are published
    /// once observations for that second have arrived from every node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn spawn(model: Arc<MonitorlessModel>, nodes: usize) -> Self {
        assert!(nodes > 0, "at least one node must report");
        let (observation_tx, observation_rx) =
            monitorless_std::channel::bounded::<Observation>(nodes * 4);
        let (prediction_tx, prediction_rx) = monitorless_std::channel::unbounded();
        let worker = std::thread::spawn(move || {
            let mut orchestrator = Orchestrator::new(model);
            let mut pending: HashMap<u64, Vec<Observation>> = HashMap::new();
            while let Ok(obs) = observation_rx.recv() {
                let t = obs.time;
                let batch = pending.entry(t).or_default();
                batch.push(obs);
                if batch.len() == nodes {
                    let batch = pending.remove(&t).expect("inserted above");
                    match orchestrator.step(&batch) {
                        Ok(predictions) => {
                            if prediction_tx
                                .send(TickPredictions {
                                    time: t,
                                    predictions: predictions.to_vec(),
                                })
                                .is_err()
                            {
                                break; // receiver dropped
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
        });
        StreamingOrchestrator {
            observation_tx,
            prediction_rx,
            worker: Some(worker),
        }
    }

    /// Channel on which node agents submit observations.
    pub fn observations(&self) -> &monitorless_std::channel::Sender<Observation> {
        &self.observation_tx
    }

    /// Channel delivering completed prediction ticks.
    pub fn predictions(&self) -> &monitorless_std::channel::Receiver<TickPredictions> {
        &self.prediction_rx
    }

    /// Closes the observation channel and joins the worker thread,
    /// returning any prediction ticks still queued.
    pub fn shutdown(mut self) -> Vec<TickPredictions> {
        // Replace (and thereby drop) our sender so the worker drains and
        // exits, then join it before collecting the queued ticks.
        let (dead_tx, _) = monitorless_std::channel::bounded(1);
        let _ = std::mem::replace(&mut self.observation_tx, dead_tx);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let mut rest = Vec::new();
        while let Ok(tick) = self.prediction_rx.try_recv() {
            rest.push(tick);
        }
        rest
    }
}

impl Drop for StreamingOrchestrator {
    fn drop(&mut self) {
        // Close our sender so the worker exits once all clones are gone;
        // the handle is detached rather than joined (C-DTOR-BLOCK) — use
        // [`StreamingOrchestrator::shutdown`] for a clean teardown.
        let (dead_tx, _) = monitorless_std::channel::bounded(1);
        let _ = std::mem::replace(&mut self.observation_tx, dead_tx);
        drop(self.worker.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};
    use monitorless_metrics::NodeId;
    use monitorless_sim::apps::build_single;
    use monitorless_sim::{Cluster, ContainerLimits, NodeSpec, ServiceProfile};

    fn trained_model() -> Arc<MonitorlessModel> {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 7,
            n_jobs: 4,
        })
        .unwrap();
        Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap())
    }

    #[test]
    fn aggregation_rules() {
        assert_eq!(Aggregation::Or.combine(&[0, 0, 1]), 1);
        assert_eq!(Aggregation::Or.combine(&[0, 0]), 0);
        assert_eq!(Aggregation::And.combine(&[1, 1]), 1);
        assert_eq!(Aggregation::And.combine(&[1, 0]), 0);
        assert_eq!(Aggregation::Majority.combine(&[1, 1, 0]), 1);
        assert_eq!(Aggregation::Majority.combine(&[1, 0]), 0);
        assert_eq!(Aggregation::Or.combine(&[]), 0);
    }

    #[test]
    fn orchestrator_tracks_and_forgets_instances() {
        let model = trained_model();
        let mut orch = Orchestrator::new(model);
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 9);
        let (app, _) = build_single(
            &mut cluster,
            ServiceProfile::test_cpu_bound("svc", 10.0),
            ContainerLimits::cpu(1.0),
            NodeId(0),
        );
        let report = cluster.step(&[(app, 10.0)]);
        let preds = orch.step(&report.observations).unwrap().to_vec();
        assert_eq!(preds.len(), 1);
        assert_eq!(orch.tracked_instances(), 1);
        assert!((0.0..=1.0).contains(&preds[0].probability));
        // Scale out: second instance appears next tick.
        cluster.scale_out(app, "svc", NodeId(0)).unwrap();
        let report = cluster.step(&[(app, 10.0)]);
        let preds = orch.step(&report.observations).unwrap().to_vec();
        assert_eq!(preds.len(), 2);
        assert_eq!(orch.tracked_instances(), 2);
    }

    #[test]
    fn step_report_matches_step() {
        let model = trained_model();
        let mut by_obs = Orchestrator::new(Arc::clone(&model));
        let mut by_report = Orchestrator::new(model);
        let mut c1 = Cluster::new(vec![NodeSpec::training_server()], 23);
        let (app, _) = build_single(
            &mut c1,
            ServiceProfile::test_cpu_bound("svc", 10.0),
            ContainerLimits::cpu(1.0),
            NodeId(0),
        );
        for _ in 0..3 {
            let report = c1.step(&[(app, 30.0)]);
            let a = by_obs.step(&report.observations).unwrap().to_vec();
            let b = by_report.step_report(&report).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.instance, y.instance);
                assert_eq!(x.probability.to_bits(), y.probability.to_bits());
            }
        }
    }

    #[test]
    fn streaming_orchestrator_collates_nodes_per_tick() {
        let model = trained_model();
        // Two nodes, two services.
        let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2()], 19);
        let app = cluster.add_app("dist");
        for (name, node) in [("front", NodeId(0)), ("back", NodeId(1))] {
            cluster.add_service(
                app,
                monitorless_sim::ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 10.0),
                    fanout: 1.0,
                    limits: ContainerLimits::cpu(1.0),
                },
                node,
            );
        }
        let streaming = StreamingOrchestrator::spawn(model, 2);
        for _ in 0..5 {
            let report = cluster.step(&[(app, 20.0)]);
            for obs in report.observations {
                streaming.observations().send(obs).unwrap();
            }
        }
        let mut ticks = Vec::new();
        for _ in 0..5 {
            ticks.push(
                streaming
                    .predictions()
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .unwrap(),
            );
        }
        // Ticks arrive in order with predictions from both nodes.
        for (i, tick) in ticks.iter().enumerate() {
            assert_eq!(tick.time, i as u64);
            assert_eq!(tick.predictions.len(), 2);
        }
        let rest = streaming.shutdown();
        assert!(rest.is_empty());
    }

    #[test]
    fn streaming_orchestrator_drop_does_not_block() {
        let model = trained_model();
        let streaming = StreamingOrchestrator::spawn(model, 1);
        drop(streaming); // must return promptly without panicking
    }

    #[test]
    fn application_prediction_uses_only_app_instances() {
        let preds = vec![
            InstancePrediction {
                instance: InstanceId(0),
                probability: 0.9,
                saturated: 1,
            },
            InstancePrediction {
                instance: InstanceId(1),
                probability: 0.1,
                saturated: 0,
            },
        ];
        // Application B contains only the healthy instance.
        let a = Orchestrator::application_prediction(&preds, &[InstanceId(0)], Aggregation::Or);
        let b = Orchestrator::application_prediction(&preds, &[InstanceId(1)], Aggregation::Or);
        assert_eq!(a, 1);
        assert_eq!(b, 0);
    }
}
