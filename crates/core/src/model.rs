//! The monitorless model: feature pipeline + random forest.

use std::path::Path;
use std::sync::Arc;

use monitorless_learn::{Classifier, FlatEnsemble, Matrix, RandomForest, RandomForestParams};

use crate::drift::{DriftConfig, DriftDetector, DriftProfile};
use crate::features::{FeaturePipeline, FittedPipeline, InstanceTransformer, PipelineConfig};
use crate::training::TrainingData;
use crate::Error;

/// Training options for [`MonitorlessModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOptions {
    /// Feature-pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Random-forest hyper-parameters.
    pub forest: RandomForestParams,
    /// Decision threshold; the paper uses 0.4 to bias against false
    /// negatives (Section 4).
    pub threshold: f64,
}

impl ModelOptions {
    /// Laptop-scale options for tests and examples.
    pub fn quick() -> Self {
        ModelOptions {
            pipeline: PipelineConfig::quick(),
            forest: RandomForestParams {
                n_estimators: 60,
                min_samples_leaf: 15,
                criterion: monitorless_learn::tree::SplitCriterion::Entropy,
                n_jobs: 4,
                ..RandomForestParams::default()
            },
            threshold: 0.4,
        }
    }

    /// The paper's selected configuration: full pipeline, 250 trees,
    /// 20 samples per leaf, information gain, threshold 0.4.
    pub fn paper() -> Self {
        ModelOptions {
            pipeline: PipelineConfig::paper_default(),
            forest: RandomForestParams {
                n_jobs: 8,
                ..RandomForestParams::paper_selected()
            },
            threshold: 0.4,
        }
    }
}

/// A trained monitorless model.
///
/// Consumes raw 1040-metric vectors (per instance, per second) and
/// predicts whether the instance is saturated — no application KPIs are
/// used at inference time.
#[derive(Debug, Clone)]
pub struct MonitorlessModel {
    pipeline: FittedPipeline,
    forest: RandomForest,
    threshold: f64,
    /// The forest compiled for batched inference; rebuilt on load, not
    /// serialized (it is derived state).
    flat: FlatEnsemble,
    /// Reference profile of the transformed training features, captured
    /// at fit time for serving-time drift detection. `None` only for
    /// models saved before the profile existed.
    drift: Option<DriftProfile>,
}

impl MonitorlessModel {
    /// Trains the model on generated training data.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and learner errors.
    pub fn train(data: &TrainingData, opts: &ModelOptions) -> Result<Self, Error> {
        Self::train_with_labels(data, data.dataset.y(), opts)
    }

    /// Trains the model against alternative per-sample labels (same rows
    /// as `data.dataset`) — used by the Section 5 scale-in classifier.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and learner errors; [`Error::Invalid`] if the
    /// labels do not match the dataset length.
    pub fn train_with_labels(
        data: &TrainingData,
        labels: &[u8],
        opts: &ModelOptions,
    ) -> Result<Self, Error> {
        if labels.len() != data.dataset.len() {
            return Err(Error::Invalid("labels do not match dataset rows".into()));
        }
        let pipeline = FeaturePipeline::new(opts.pipeline);
        let (fitted, x) = pipeline.fit_transform(
            data.dataset.x(),
            labels,
            data.dataset.groups(),
            data.layout.clone(),
        )?;
        let mut forest = RandomForest::new(opts.forest.clone());
        forest.fit(&x, labels, None)?;
        let flat = forest.to_flat();
        let drift = Some(DriftProfile::from_matrix(&x));
        Ok(MonitorlessModel {
            pipeline: fitted,
            forest,
            threshold: opts.threshold,
            flat,
            drift,
        })
    }

    /// The fitted feature pipeline.
    pub fn pipeline(&self) -> &FittedPipeline {
        &self.pipeline
    }

    /// The trained forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// The forest compiled to its flat inference table (built once at
    /// train/load time; all predict entry points run on it).
    pub fn flat(&self) -> &FlatEnsemble {
        &self.flat
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Reference drift profile of the transformed training features
    /// (`None` for models saved before the profile existed).
    pub fn drift_profile(&self) -> Option<&DriftProfile> {
        self.drift.as_ref()
    }

    /// Creates a streaming drift detector over this model's reference
    /// profile, or `None` when the model predates drift profiles.
    pub fn drift_detector(&self, config: DriftConfig) -> Option<DriftDetector> {
        Some(self.drift.as_ref()?.detector(config))
    }

    /// Overrides the decision threshold (FN/FP trade-off, Section 4).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Replaces the forest with one trained elsewhere on this model's
    /// transformed feature space, recompiling the flat table — used to
    /// pair a cheaply fitted pipeline with a separately fitted
    /// paper-shaped forest (e.g. the serving-tick bench).
    ///
    /// # Errors
    ///
    /// [`Error::Invalid`] when the forest's feature count differs from
    /// the pipeline output width.
    pub fn with_forest(mut self, forest: RandomForest) -> Result<Self, Error> {
        let flat = forest.to_flat();
        if flat.n_features() != self.pipeline.output_width() {
            return Err(Error::Invalid(format!(
                "forest expects {} features, pipeline produces {}",
                flat.n_features(),
                self.pipeline.output_width()
            )));
        }
        self.forest = forest;
        self.flat = flat;
        Ok(self)
    }

    /// Batch prediction on raw vectors (chronological within groups).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn predict_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Vec<u8>, Error> {
        let proba = self.predict_proba_batch(x_raw, groups)?;
        Ok(proba
            .into_iter()
            .map(|p| u8::from(p >= self.threshold))
            .collect())
    }

    /// Batch probabilities on raw vectors, evaluated on the flat table
    /// (bit-identical to the forest's recursive reference walk).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn predict_proba_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Vec<f64>, Error> {
        let x = self.pipeline.transform_batch(x_raw, groups)?;
        Ok(self.flat.predict_proba(&x, self.forest.params().n_jobs))
    }

    /// Creates a per-instance online transformer sharing this model's
    /// pipeline.
    pub fn transformer(self: &Arc<Self>) -> InstanceTransformer {
        InstanceTransformer::new(Arc::new(self.pipeline.clone()))
    }

    /// Predicts from an already-transformed feature vector.
    ///
    /// This is the autoscaler's per-tick hot path: the flat single-row
    /// walk performs no allocation (`table7_predict` asserts the
    /// allocation count stays zero), where it previously built a 1-row
    /// [`Matrix`] per call.
    pub fn predict_features(&self, features: &[f64]) -> (f64, u8) {
        let p = self.flat.predict_row(features);
        (p, u8::from(p >= self.threshold))
    }

    /// Applies the decision threshold to a probability — the same
    /// cutoff [`MonitorlessModel::predict_features`] uses, exposed so
    /// batched fleet scoring can fan probabilities back out to
    /// per-instance decisions.
    pub fn decide(&self, probability: f64) -> u8 {
        u8::from(probability >= self.threshold)
    }

    /// Scores a whole fleet's worth of already-transformed feature
    /// rows (row-major, one row per instance) in one blocked pass,
    /// writing one probability per row into `probs`.
    ///
    /// Per row, the result is bit-identical to
    /// [`MonitorlessModel::predict_features`] for every `n_jobs` — the
    /// serving tick's batched fast path.
    ///
    /// # Panics
    ///
    /// As [`FlatEnsemble::predict_rows_into`].
    pub fn predict_fleet_into(&self, rows: &[f64], probs: &mut [f64], n_jobs: usize) {
        self.flat
            .predict_rows_into(rows, self.pipeline.output_width(), probs, n_jobs);
    }

    /// Feature importances of the trained forest, paired with pipeline
    /// feature names and sorted descending — the Table 4 ranking.
    pub fn feature_importances(&self) -> Vec<(String, f64)> {
        let imp = self.forest.feature_importances();
        let mut pairs: Vec<(String, f64)> = self
            .pipeline
            .feature_names()
            .iter()
            .cloned()
            .zip(imp)
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs
    }

    /// Persists the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization errors.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        let json = monitorless_std::json::to_string(self);
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved with [`MonitorlessModel::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or deserialization errors.
    pub fn load(path: &Path) -> Result<Self, Error> {
        let json = std::fs::read_to_string(path)?;
        Ok(monitorless_std::json::from_str(&json)?)
    }
}

// Hand-written (rather than `json_struct!`) because the flat table is
// derived state: pipeline/forest/threshold plus the optional drift
// profile go on the wire, and deserialization recompiles the flat table
// from the forest. The drift field is read with `json.get` rather than
// `field` so models saved before it existed still load.
impl monitorless_std::json::ToJson for MonitorlessModel {
    fn to_json(&self) -> monitorless_std::json::Json {
        let mut members = vec![
            ("pipeline".to_string(), self.pipeline.to_json()),
            ("forest".to_string(), self.forest.to_json()),
            ("threshold".to_string(), self.threshold.to_json()),
        ];
        if let Some(drift) = &self.drift {
            members.push(("drift".to_string(), drift.to_json()));
        }
        monitorless_std::json::Json::Obj(members)
    }
}

impl monitorless_std::json::FromJson for MonitorlessModel {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        let pipeline: FittedPipeline = monitorless_std::json::field(json, "pipeline")?;
        let forest: RandomForest = monitorless_std::json::field(json, "forest")?;
        let threshold: f64 = monitorless_std::json::field(json, "threshold")?;
        let drift = match json.get("drift") {
            Some(j) => Some(DriftProfile::from_json(j)?),
            None => None,
        };
        let flat = forest.to_flat();
        Ok(MonitorlessModel {
            pipeline,
            forest,
            threshold,
            flat,
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{generate_training_data, TrainingOptions};

    fn tiny_data() -> TrainingData {
        generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 5,
            n_jobs: 4,
        })
        .unwrap()
    }

    #[test]
    fn train_and_self_predict() {
        let data = tiny_data();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let pred = model
            .predict_batch(data.dataset.x(), data.dataset.groups())
            .unwrap();
        let f1 = monitorless_learn::metrics::f1_score(data.dataset.y(), &pred);
        assert!(f1 > 0.8, "training F1 = {f1}");
        assert!(model.pipeline().output_width() > 0);
    }

    #[test]
    fn importances_are_normalized_and_named() {
        let data = tiny_data();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let imp = model.feature_importances();
        assert_eq!(imp.len(), model.pipeline().output_width());
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Sorted descending.
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn save_load_roundtrip() {
        let data = tiny_data();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let dir = std::env::temp_dir().join("monitorless_model_test.json");
        model.save(&dir).unwrap();
        let back = MonitorlessModel::load(&dir).unwrap();
        let p1 = model
            .predict_proba_batch(data.dataset.x(), data.dataset.groups())
            .unwrap();
        let p2 = back
            .predict_proba_batch(data.dataset.x(), data.dataset.groups())
            .unwrap();
        assert_eq!(p1, p2);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn threshold_is_adjustable() {
        let data = tiny_data();
        let mut model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        assert_eq!(model.threshold(), 0.4);
        model.set_threshold(0.9);
        let strict = model
            .predict_batch(data.dataset.x(), data.dataset.groups())
            .unwrap();
        model.set_threshold(0.1);
        let lax = model
            .predict_batch(data.dataset.x(), data.dataset.groups())
            .unwrap();
        let count = |v: &[u8]| v.iter().filter(|&&l| l == 1).count();
        assert!(count(&lax) >= count(&strict));
    }
}
