//! Training-set coverage analysis — the iterative-improvement loop of
//! Section 3.2.3.
//!
//! The paper normalizes the training data with a `MinMaxScaler`, keeps
//! the fitted scaler, and checks validation data against it: "if any
//! feature has its maximum or its minimum outside the scaling range of
//! the trained scaler, we know that this feature was not sufficiently
//! trained". Uncovered features point at missing training scenarios
//! (steps 3-4: design additional training cases and repeat).

use monitorless_learn::{Matrix, MinMaxScaler, Transformer};

use crate::training::TrainingData;
use crate::Error;

/// One insufficiently-trained feature.
#[derive(Debug, Clone, PartialEq)]
pub struct UncoveredFeature {
    /// Raw metric name.
    pub name: String,
    /// Range observed during training `(min, max)`.
    pub train_range: (f64, f64),
    /// Range observed in the validation data `(min, max)`.
    pub validation_range: (f64, f64),
}

/// Report of a coverage check.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Features whose validation range escapes the training range.
    pub uncovered: Vec<UncoveredFeature>,
    /// Total features checked.
    pub total_features: usize,
}

impl CoverageReport {
    /// Fraction of features fully covered by the training set.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_features == 0 {
            return 1.0;
        }
        1.0 - self.uncovered.len() as f64 / self.total_features as f64
    }
}

/// A fitted coverage checker (the "normalizing instance" of step 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageChecker {
    scaler: MinMaxScaler,
    names: Vec<String>,
}

impl CoverageChecker {
    /// Fits the checker on training data (raw metric space).
    ///
    /// # Errors
    ///
    /// Propagates scaler errors.
    pub fn fit(data: &TrainingData) -> Result<Self, Error> {
        let mut scaler = MinMaxScaler::new();
        scaler.fit(data.dataset.x())?;
        Ok(CoverageChecker {
            scaler,
            names: data.dataset.feature_names().to_vec(),
        })
    }

    /// Checks a validation matrix (same raw metric layout) against the
    /// training ranges — step 2 of the paper's loop.
    ///
    /// # Errors
    ///
    /// Propagates scaler errors (e.g. column-count mismatch).
    pub fn check(&self, validation: &Matrix) -> Result<CoverageReport, Error> {
        let uncovered_idx = self.scaler.uncovered_features(validation)?;
        let (vmins, vmaxs) = validation.column_min_max();
        let tmins = self.scaler.mins().expect("fitted");
        let tmaxs = self.scaler.maxs().expect("fitted");
        let uncovered = uncovered_idx
            .into_iter()
            .map(|i| UncoveredFeature {
                name: self.names[i].clone(),
                train_range: (tmins[i], tmaxs[i]),
                validation_range: (vmins[i], vmaxs[i]),
            })
            .collect();
        Ok(CoverageReport {
            uncovered,
            total_features: validation.cols(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scenario::{run_eval_scenario, EvalApp, EvalOptions};
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn validation_within_training_ranges_is_covered() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 601,
            n_jobs: 4,
        })
        .unwrap();
        let checker = CoverageChecker::fit(&data).unwrap();
        // The training data covers itself perfectly.
        let report = checker.check(data.dataset.x()).unwrap();
        assert!(report.uncovered.is_empty());
        assert_eq!(report.coverage_fraction(), 1.0);
    }

    #[test]
    fn out_of_range_features_are_named() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 603,
            n_jobs: 4,
        })
        .unwrap();
        let checker = CoverageChecker::fit(&data).unwrap();
        // Blow up one metric far beyond anything seen in training.
        let mut validation = data.dataset.x().select_rows(&[0, 1, 2]);
        let width = validation.cols();
        validation.set(1, 5, 1e15);
        let report = checker.check(&validation).unwrap();
        assert_eq!(report.total_features, width);
        assert!(report
            .uncovered
            .iter()
            .any(|u| u.name == data.dataset.feature_names()[5]));
        assert!(report.coverage_fraction() < 1.0);
    }

    #[test]
    fn unseen_application_exposes_coverage_gaps() {
        // The paper's step 2 in practice: validating against an unseen
        // application usually reveals some insufficiently-trained
        // features (and most features remain covered).
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 605,
            n_jobs: 4,
        })
        .unwrap();
        let checker = CoverageChecker::fit(&data).unwrap();
        let run = run_eval_scenario(
            EvalApp::ThreeTier,
            None,
            &EvalOptions {
                duration: 100,
                ramp_seconds: 120,
                seed: 607,
                record_raw: true,
            },
        )
        .unwrap();
        let raws = run.raw_instances.as_ref().unwrap();
        let refs: Vec<&[f64]> = raws[0].1.iter().map(|r| r.as_slice()).collect();
        let validation = monitorless_learn::Matrix::from_rows(&refs);
        let report = checker.check(&validation).unwrap();
        assert!(report.coverage_fraction() > 0.5, "most features covered");
    }
}
