//! *Monitorless*: predicting cloud-application KPI degradation from
//! platform-level metrics only.
//!
//! This crate is the reproduction of the Middleware '19 paper's primary
//! contribution. It glues the substrates together:
//!
//! * [`features`] — the feature-engineering pipeline of Section 3.3:
//!   binary CPU/MEM level flags, log scaling, standardization,
//!   random-forest filtering or PCA, time-dependent `X-AVG`/`X-LAG`
//!   variants, multiplicative cross-domain feature products and
//!   zero-variance removal, arranged in the paper's 6-step pipeline;
//! * [`training`] — the Table 1 training-set catalog (25 configurations
//!   of Solr, Memcache and Cassandra under different limits, co-location
//!   and traffic), Υ calibration runs, and dataset generation;
//! * [`model`] — the monitorless model itself (feature pipeline +
//!   random-forest classifier with the paper's 0.4 decision threshold);
//! * [`orchestrator`] — online inference: per-instance rolling windows,
//!   per-container saturation predictions and the logical-OR aggregation
//!   to application level;
//! * [`baselines`] — the comparison detectors of Section 4: optimally
//!   tuned CPU / MEM / CPU-OR-MEM / CPU-AND-MEM thresholds and the
//!   response-time-based (optimal) detector;
//! * [`autoscale`] — the Section 4.2.2 autoscaling loop: scale-out on
//!   predicted saturation, 120-second replica lifespan, SLO accounting
//!   (750 ms average response time, drops, >10% failures);
//! * [`experiments`] — one harness per paper table/figure (Tables 1–8,
//!   Figures 2–3), each returning printable rows.
//!
//! The paper's Section 5 ("Discussion") extensions are implemented too:
//! [`scalein`] (an additional classifier detecting overprovisioned
//! services), [`interpret`] (depth-restricted rule distillation),
//! [`coverage`] (the Section 3.2.3 training-set coverage loop) and
//! [`adapt`] (unlabeled domain adaptation by moment alignment).
//!
//! # Quickstart
//!
//! ```no_run
//! use monitorless::training::{generate_training_data, TrainingOptions};
//! use monitorless::model::{MonitorlessModel, ModelOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = generate_training_data(&TrainingOptions::quick(1))?;
//! let model = MonitorlessModel::train(&data, &ModelOptions::quick())?;
//! println!("trained on {} samples", data.dataset.len());
//! # let _ = model;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
pub mod autoscale;
pub mod baselines;
pub mod coverage;
pub mod drift;
pub mod experiments;
pub mod features;
pub mod interpret;
pub mod model;
pub mod orchestrator;
pub mod scalein;
pub mod training;

/// Errors produced by this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A machine-learning step failed.
    Learn(monitorless_learn::Error),
    /// A labeling step failed.
    Label(monitorless_label::Error),
    /// The pipeline was used before being fitted.
    NotFitted,
    /// Inconsistent configuration or input.
    Invalid(String),
    /// Serialization failure.
    Serde(monitorless_std::json::JsonError),
    /// I/O failure while persisting a model.
    Io(std::io::Error),
    /// A cluster-simulation operation failed (e.g. scaling an unknown
    /// service).
    Sim(monitorless_sim::ClusterError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Learn(e) => write!(f, "learning error: {e}"),
            Error::Label(e) => write!(f, "labeling error: {e}"),
            Error::NotFitted => write!(f, "pipeline has not been fitted"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::Serde(e) => write!(f, "serialization error: {e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Learn(e) => Some(e),
            Error::Label(e) => Some(e),
            Error::Serde(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<monitorless_learn::Error> for Error {
    fn from(e: monitorless_learn::Error) -> Self {
        Error::Learn(e)
    }
}

impl From<monitorless_label::Error> for Error {
    fn from(e: monitorless_label::Error) -> Self {
        Error::Label(e)
    }
}

impl From<monitorless_std::json::JsonError> for Error {
    fn from(e: monitorless_std::json::JsonError) -> Self {
        Error::Serde(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<monitorless_sim::ClusterError> for Error {
    fn from(e: monitorless_sim::ClusterError) -> Self {
        Error::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_and_chains() {
        let e = Error::Learn(monitorless_learn::Error::NotFitted);
        assert!(e.to_string().contains("learning"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(Error::NotFitted.to_string().contains("fitted"));
        let s: Error =
            monitorless_sim::ClusterError::UnknownNode(monitorless_metrics::NodeId(3)).into();
        assert!(s.to_string().contains("simulation error"));
        assert!(std::error::Error::source(&s).is_some());
    }
}
