//! Trace-driven load profiles.
//!
//! Cluster traces published by Google and Azure record arrival rates as a
//! sparse series of `(time, rate)` change points rather than a dense
//! per-second signal: a usage row holds until the next row replaces it.
//! [`TraceProfile`] replays such a series behind the [`LoadProfile`]
//! trait, so traced workloads compose with the synthetic profiles and
//! plug straight into the simulator's event queue — each trace row is one
//! load-change event and nothing happens in between.
//!
//! # Trace format
//!
//! One change point per line, whitespace- or comma-separated:
//!
//! ```text
//! # comment lines start with '#', blank lines are skipped
//! <time-seconds> <rate-requests-per-second>
//! 0       120
//! 300     450.5
//! 600,80
//! ```
//!
//! Times must be non-negative integers in strictly increasing order;
//! rates must be finite and non-negative. The rate of the first row also
//! applies to all seconds before it, and the last row holds forever
//! (step interpolation) or becomes the final value of the last ramp
//! (linear interpolation).
//!
//! # Interpolation
//!
//! * [`TraceInterp::Step`] — the rate holds between rows. This matches
//!   cluster-trace semantics and gives the event queue maximal skip: the
//!   only change points are the rows themselves.
//! * [`TraceInterp::Linear`] — the rate ramps linearly between rows,
//!   changing every second until the last row.
//!
//! ```
//! use monitorless_workload::{LoadProfile, TraceInterp, TraceProfile};
//!
//! let trace = TraceProfile::parse("0 100\n60 300\n120 50\n", TraceInterp::Step).unwrap();
//! assert_eq!(trace.intensity(59), 100.0);
//! assert_eq!(trace.intensity(60), 300.0);
//! assert_eq!(trace.next_change(0), Some(60)); // nothing moves until row 2
//! assert_eq!(trace.next_change(120), None); // last row holds forever
//! ```

use std::fmt;

use monitorless_std::rng::{Rng, StdRng};

use crate::profile::LoadProfile;

/// How a [`TraceProfile`] fills the seconds between trace rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceInterp {
    /// Each row's rate holds until the next row (cluster-trace semantics).
    Step,
    /// The rate ramps linearly from row to row.
    Linear,
}

/// An error from [`TraceProfile::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace contained no data rows.
    Empty,
    /// A line could not be parsed as `<time> <rate>`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line's text.
        text: String,
    },
    /// A row's time was not strictly greater than its predecessor's.
    NonMonotonic {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A row's rate was negative or not finite.
    BadRate {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no data rows"),
            TraceError::Malformed { line, text } => {
                write!(f, "line {line}: expected `<time> <rate>`, got {text:?}")
            }
            TraceError::NonMonotonic { line } => {
                write!(f, "line {line}: times must be strictly increasing")
            }
            TraceError::BadRate { line } => {
                write!(f, "line {line}: rate must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A load profile replaying a sparse `(time, rate)` change-point series.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    points: Vec<(u64, f64)>,
    interp: TraceInterp,
}

impl TraceProfile {
    /// Builds a profile from change points directly.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, times are not strictly increasing, or
    /// a rate is negative/non-finite. Use [`TraceProfile::parse`] for
    /// fallible construction from untrusted text.
    pub fn new(points: Vec<(u64, f64)>, interp: TraceInterp) -> Self {
        assert!(!points.is_empty(), "trace needs at least one point");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "times must be strictly increasing");
        }
        for &(_, r) in &points {
            assert!(r.is_finite() && r >= 0.0, "rates must be finite and non-negative");
        }
        TraceProfile { points, interp }
    }

    /// Parses the textual trace format described in the module docs.
    pub fn parse(text: &str, interp: TraceInterp) -> Result<Self, TraceError> {
        let mut points: Vec<(u64, f64)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut fields = content
                .split(|c: char| c.is_whitespace() || c == ',')
                .filter(|f| !f.is_empty());
            let (time, rate) = match (fields.next(), fields.next(), fields.next()) {
                (Some(t), Some(r), None) => match (t.parse::<u64>(), r.parse::<f64>()) {
                    (Ok(t), Ok(r)) => (t, r),
                    _ => {
                        return Err(TraceError::Malformed {
                            line,
                            text: raw.to_string(),
                        })
                    }
                },
                _ => {
                    return Err(TraceError::Malformed {
                        line,
                        text: raw.to_string(),
                    })
                }
            };
            if !rate.is_finite() || rate < 0.0 {
                return Err(TraceError::BadRate { line });
            }
            if let Some(&(prev, _)) = points.last() {
                if time <= prev {
                    return Err(TraceError::NonMonotonic { line });
                }
            }
            points.push((time, rate));
        }
        if points.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(TraceProfile { points, interp })
    }

    /// The bundled sample trace: six hours of a diurnal cluster arrival
    /// stream (Google/Azure-trace shaped) at 5-minute resolution, with a
    /// morning ramp, a lunchtime dip, an afternoon burst and an overnight
    /// scale-to-zero tail.
    pub fn sample_cluster() -> Self {
        TraceProfile::parse(include_str!("../traces/sample_cluster.trace"), TraceInterp::Step)
            .expect("bundled trace is valid")
    }

    /// Synthesizes a cluster-trace-shaped change-point series for scale
    /// runs: a diurnal base rate between `base` and `peak` req/s sampled
    /// every `interval` seconds over `duration` seconds, with seeded
    /// burst rows injected on top (deterministic for a given seed).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `peak < base`.
    pub fn synthesize(seed: u64, duration: u64, interval: u64, base: f64, peak: f64) -> Self {
        assert!(interval > 0, "interval must be positive");
        assert!(peak >= base, "peak must be at least base");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let day = 86_400.0;
        let mut t = 0;
        while t <= duration {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / day;
            // Diurnal curve with a secondary harmonic, like real cluster
            // arrival streams: deep overnight trough, double daytime hump.
            let diurnal = 0.5 - 0.45 * phase.cos() + 0.15 * (2.0 * phase).sin();
            let jitter: f64 = 1.0 + 0.1 * rng.gen_range(-1.0..1.0);
            let burst: f64 = if rng.gen_range(0.0..1.0) < 0.04 {
                1.0 + rng.gen_range(0.5..1.5)
            } else {
                1.0
            };
            let rate = (base + (peak - base) * diurnal.clamp(0.0, 1.0)) * jitter * burst;
            points.push((t, rate.max(0.0)));
            t += interval;
        }
        TraceProfile::new(points, TraceInterp::Step)
    }

    /// The trace's change points, in increasing time order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The interpolation mode between rows.
    pub fn interp(&self) -> TraceInterp {
        self.interp
    }

    /// Changes the interpolation mode between rows.
    pub fn set_interp(&mut self, interp: TraceInterp) {
        self.interp = interp;
    }

    /// Index of the last point with time `<= t`, or `None` before the
    /// first point.
    fn floor_index(&self, t: u64) -> Option<usize> {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }
}

impl LoadProfile for TraceProfile {
    fn intensity(&self, t: u64) -> f64 {
        let i = match self.floor_index(t) {
            Some(i) => i,
            None => return self.points[0].1, // first row also covers the prefix
        };
        match (self.interp, self.points.get(i + 1)) {
            (TraceInterp::Step, _) | (TraceInterp::Linear, None) => self.points[i].1,
            (TraceInterp::Linear, Some(&(t1, r1))) => {
                let (t0, r0) = self.points[i];
                let frac = (t - t0) as f64 / (t1 - t0) as f64;
                r0 + (r1 - r0) * frac
            }
        }
    }

    fn duration(&self) -> u64 {
        self.points.last().expect("non-empty").0 + 1
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        let last = self.points.last().expect("non-empty").0;
        match self.interp {
            TraceInterp::Step => {
                // Next row with a bitwise-different rate, if any.
                let cur = self.intensity(t).to_bits();
                self.points
                    .iter()
                    .find(|&&(pt, r)| pt > t && r.to_bits() != cur)
                    .map(|&(pt, _)| pt)
            }
            TraceInterp::Linear => {
                if t < last {
                    Some(t + 1) // still ramping between rows
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_comments_blanks_and_commas() {
        let text = "# header\n\n0 100\n 300\t250.5 # inline\n600,80\n";
        let p = TraceProfile::parse(text, TraceInterp::Step).unwrap();
        assert_eq!(p.points(), &[(0, 100.0), (300, 250.5), (600, 80.0)]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in ["oops", "1", "1 2 3", "x 5", "5 y", "3 1e999999"] {
            let err = TraceProfile::parse(bad, TraceInterp::Step).unwrap_err();
            match err {
                TraceError::Malformed { line: 1, .. } | TraceError::BadRate { line: 1 } => {}
                other => panic!("{bad:?}: unexpected error {other:?}"),
            }
        }
        assert_eq!(
            TraceProfile::parse("0 1\n0 2\n", TraceInterp::Step).unwrap_err(),
            TraceError::NonMonotonic { line: 2 }
        );
        assert_eq!(
            TraceProfile::parse("0 1\n5 -2\n", TraceInterp::Step).unwrap_err(),
            TraceError::BadRate { line: 2 }
        );
    }

    #[test]
    fn parse_rejects_empty_traces() {
        for empty in ["", "\n\n", "# only comments\n"] {
            assert_eq!(
                TraceProfile::parse(empty, TraceInterp::Step).unwrap_err(),
                TraceError::Empty
            );
        }
    }

    #[test]
    fn step_holds_between_rows() {
        let p = TraceProfile::parse("10 100\n20 300\n", TraceInterp::Step).unwrap();
        assert_eq!(p.intensity(0), 100.0, "prefix takes the first rate");
        assert_eq!(p.intensity(10), 100.0);
        assert_eq!(p.intensity(19), 100.0);
        assert_eq!(p.intensity(20), 300.0);
        assert_eq!(p.intensity(1000), 300.0, "last row holds forever");
    }

    #[test]
    fn linear_interpolates_at_change_points() {
        let p = TraceProfile::parse("0 100\n10 200\n20 0\n", TraceInterp::Linear).unwrap();
        assert_eq!(p.intensity(0), 100.0);
        assert_eq!(p.intensity(5), 150.0);
        assert_eq!(p.intensity(10), 200.0, "exactly at a row takes the row value");
        assert_eq!(p.intensity(15), 100.0);
        assert_eq!(p.intensity(20), 0.0);
        assert_eq!(p.intensity(99), 0.0);
    }

    #[test]
    fn step_next_change_skips_straight_to_differing_rows() {
        let p = TraceProfile::parse("0 100\n60 100\n120 50\n", TraceInterp::Step).unwrap();
        // Row at 60 repeats the rate, so the first real change is 120.
        assert_eq!(p.next_change(0), Some(120));
        assert_eq!(p.next_change(119), Some(120));
        assert_eq!(p.next_change(120), None);
    }

    #[test]
    fn linear_next_change_goes_quiet_after_last_row() {
        let p = TraceProfile::parse("0 1\n5 2\n", TraceInterp::Linear).unwrap();
        assert_eq!(p.next_change(0), Some(1));
        assert_eq!(p.next_change(4), Some(5));
        assert_eq!(p.next_change(5), None);
    }

    #[test]
    fn next_change_is_sound_for_both_interps() {
        for interp in [TraceInterp::Step, TraceInterp::Linear] {
            let p = TraceProfile::parse("3 10\n9 40\n15 40\n22 5\n", interp).unwrap();
            let mut t = 0;
            let mut held = p.intensity(0);
            let mut next = p.next_change(0);
            for s in 0..40 {
                while t < s {
                    match next {
                        Some(n) => {
                            t = n.min(s);
                            if t == n {
                                held = p.intensity(n);
                                next = p.next_change(n);
                            }
                        }
                        None => t = s,
                    }
                }
                assert_eq!(held.to_bits(), p.intensity(s).to_bits(), "{interp:?} t={s}");
            }
        }
    }

    #[test]
    fn sample_cluster_trace_loads() {
        let p = TraceProfile::sample_cluster();
        assert!(p.points().len() > 20);
        assert!(p.duration() >= 6 * 3600);
        // Scale-to-zero tail: the trace ends quiet.
        assert_eq!(p.points().last().unwrap().1, 0.0);
        let peak = p.points().iter().map(|&(_, r)| r).fold(0.0, f64::max);
        assert!(peak > 500.0, "peak {peak}");
    }

    #[test]
    fn synthesize_is_deterministic_and_bounded() {
        let a = TraceProfile::synthesize(7, 86_400, 300, 50.0, 800.0);
        let b = TraceProfile::synthesize(7, 86_400, 300, 50.0, 800.0);
        assert_eq!(a, b);
        assert_ne!(a, TraceProfile::synthesize(8, 86_400, 300, 50.0, 800.0));
        assert_eq!(a.points().len(), 86_400 / 300 + 1);
        assert!(a.points().iter().all(|&(_, r)| r >= 0.0));
        // Diurnal shape: overnight trough well below the daytime peak.
        let trough = a.points().iter().map(|&(_, r)| r).fold(f64::MAX, f64::min);
        let peak = a.points().iter().map(|&(_, r)| r).fold(0.0, f64::max);
        assert!(peak > 3.0 * trough.max(1.0), "peak {peak} trough {trough}");
    }
}
