//! Hostile autoscaling scenarios for the bake-off harness.
//!
//! The paper's Table 7 compares policies on a single friendly daily
//! trace. Real fleets see worse: serverless-style idle gaps punctuated
//! by bursts that arrive faster than a cold start, flash crowds on top
//! of a steady baseline, diurnal cluster traces with seeded noise
//! bursts, and slow ramps that quietly squeeze capacity. Each
//! [`Scenario`] bundles one such arrival pattern with the platform
//! parameters that make it hostile — cold-start latency and the
//! instance floor/ceiling the autoscaler may move between.
//!
//! Rates are expressed in requests/second and calibrated so that **one
//! instance of the harness's reference service sustains ~100 req/s**;
//! peak demand is then directly readable as "instances needed". Every
//! scenario is a pure function of `(seed, quick)` — two builds with the
//! same arguments replay bit-identical arrivals.

use std::sync::Arc;

use crate::profile::{ConstantProfile, LoadProfile, LocustProfile, RampProfile, SumProfile};
use crate::trace::{TraceInterp, TraceProfile};
use monitorless_std::rng::{Rng, StdRng};

/// One hostile scenario: a seeded arrival pattern plus the platform
/// parameters (cold start, instance floor/ceiling) the bake-off
/// harness applies to every backend it runs through it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable identifier used in reports (`scale_to_zero`, …).
    pub name: &'static str,
    /// One-line description of what makes the scenario hostile.
    pub description: &'static str,
    /// The arrival pattern. Shared so one scenario can drive several
    /// backends with bit-identical load.
    pub profile: Arc<dyn LoadProfile>,
    /// Run length in seconds.
    pub duration: u64,
    /// Seconds between a scale-out decision and the instance serving.
    pub cold_start_s: u64,
    /// Fewest instances the autoscaler may keep (0 = scale-to-zero).
    pub min_instances: u32,
    /// Most instances the autoscaler may run.
    pub max_instances: u32,
}

impl Scenario {
    /// A fresh boxed handle onto the shared arrival pattern.
    pub fn profile_box(&self) -> Box<dyn LoadProfile> {
        Box::new(Arc::clone(&self.profile))
    }

    /// Serverless scale-to-zero: short ~260 req/s bursts separated by
    /// long idle gaps, with a cold start that eats most of a burst if
    /// the scaler starts from zero capacity.
    pub fn scale_to_zero(seed: u64, quick: bool) -> Self {
        let period = 300u64; // one burst every 5 minutes
        let bursts = if quick { 3 } else { 12 };
        let duration = period * bursts as u64;
        let mut parts: Vec<Box<dyn LoadProfile>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11C_E5ED);
        for b in 0..bursts {
            // Jitter the burst start inside its period slot so arrival
            // times are not harmonically aligned with anything.
            let start = b as u64 * period + 45 + rng.gen_range(0u64..30);
            let rate = 220.0 + rng.gen_range(0.0..80.0);
            parts.push(Box::new(shifted_pulse(rate, start, 15, 75)));
        }
        Scenario {
            name: "scale_to_zero",
            description: "idle gaps between bursts; capacity must reach zero and come back",
            profile: Arc::new(SumProfile::new(parts)),
            duration,
            cold_start_s: 20,
            min_instances: 0,
            max_instances: 6,
        }
    }

    /// Flash crowd: a comfortable ~70 req/s baseline with Locust-hatch
    /// spikes to ~5x baseline arriving with no warning.
    pub fn flash_crowd(seed: u64, quick: bool) -> Self {
        let duration = if quick { 900 } else { 3600 };
        let spikes = if quick { 2 } else { 5 };
        let mut parts: Vec<Box<dyn LoadProfile>> =
            vec![Box::new(ConstantProfile::new(70.0, duration))];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A5_C0DE);
        let slot = duration / (spikes as u64 + 1);
        for s in 0..spikes {
            let start = slot * (s as u64 + 1) - 60 + rng.gen_range(0u64..120);
            let rate = 380.0 + rng.gen_range(0.0..120.0);
            parts.push(Box::new(shifted_pulse(rate, start, 30, 90)));
        }
        Scenario {
            name: "flash_crowd",
            description: "sudden Locust-hatch spikes to ~5x a steady baseline",
            profile: Arc::new(SumProfile::new(parts)),
            duration,
            cold_start_s: 10,
            min_instances: 1,
            max_instances: 8,
        }
    }

    /// Diurnal replay: a compressed two-peak day in the shape of public
    /// cluster traces, replayed through [`TraceProfile`] with seeded
    /// noise bursts on top.
    pub fn diurnal(seed: u64, quick: bool) -> Self {
        let duration = if quick { 900 } else { 3600 };
        let day = duration; // one full compressed day per run
        let interval = 30u64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1_0BA1);
        let mut points = Vec::new();
        let mut t = 0;
        while t <= duration {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / day as f64;
            let diurnal = 0.5 - 0.45 * phase.cos() + 0.15 * (2.0 * phase).sin();
            let jitter: f64 = 1.0 + 0.08 * rng.gen_range(-1.0..1.0);
            let burst: f64 = if rng.gen_range(0.0..1.0) < 0.05 {
                1.0 + rng.gen_range(0.3..0.9)
            } else {
                1.0
            };
            let rate = (40.0 + 400.0 * diurnal.clamp(0.0, 1.0)) * jitter * burst;
            points.push((t, rate.max(0.0)));
            t += interval;
        }
        Scenario {
            name: "diurnal_trace",
            description: "compressed cluster-trace day with seeded noise bursts",
            profile: Arc::new(TraceProfile::new(points, TraceInterp::Step)),
            duration,
            cold_start_s: 10,
            min_instances: 1,
            max_instances: 8,
        }
    }

    /// Slow-ramp capacity squeeze: demand climbs linearly from well
    /// under one instance to just below the ceiling's capacity, never
    /// giving the scaler a clean step to react to.
    pub fn slow_ramp(_seed: u64, quick: bool) -> Self {
        let duration = if quick { 900 } else { 3600 };
        Scenario {
            name: "slow_ramp",
            description: "linear climb to ~6 instances' worth of demand, then a hard hold",
            profile: Arc::new(RampProfile::new(40.0, 560.0, duration)),
            duration,
            cold_start_s: 10,
            min_instances: 1,
            max_instances: 8,
        }
    }

    /// The full hostile pack, in report order.
    pub fn pack(seed: u64, quick: bool) -> Vec<Scenario> {
        vec![
            Scenario::scale_to_zero(seed, quick),
            Scenario::flash_crowd(seed, quick),
            Scenario::diurnal(seed, quick),
            Scenario::slow_ramp(seed, quick),
        ]
    }
}

/// A single burst: Locust hatch to `rate` over `hatch` seconds, hold
/// for `hold`, then silence — shifted to begin at `start`.
fn shifted_pulse(
    rate: f64,
    start: u64,
    hatch: u64,
    hold: u64,
) -> crate::profile::ShiftedProfile<LocustProfile> {
    crate::profile::ShiftedProfile::new(LocustProfile::new(rate, hatch, hold), start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_deterministic() {
        let a = Scenario::pack(7, true);
        let b = Scenario::pack(7, true);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.duration, y.duration);
            for t in (0..x.duration).step_by(7) {
                assert_eq!(
                    x.profile.intensity(t).to_bits(),
                    y.profile.intensity(t).to_bits(),
                    "{} t={t}",
                    x.name
                );
            }
        }
    }

    #[test]
    fn scale_to_zero_has_idle_gaps_and_bursts() {
        let sc = Scenario::scale_to_zero(7, true);
        assert_eq!(sc.min_instances, 0);
        let mut idle = 0u64;
        let mut peak = 0.0f64;
        for t in 0..sc.duration {
            let r = sc.profile.intensity(t);
            if r == 0.0 {
                idle += 1;
            }
            peak = peak.max(r);
        }
        assert!(idle > sc.duration / 3, "idle only {idle} of {} s", sc.duration);
        assert!(peak > 200.0, "peak {peak}");
    }

    #[test]
    fn flash_crowd_spikes_over_baseline() {
        let sc = Scenario::flash_crowd(7, true);
        let base = sc.profile.intensity(5);
        assert!((60.0..=80.0).contains(&base), "baseline {base}");
        let peak = (0..sc.duration)
            .map(|t| sc.profile.intensity(t))
            .fold(0.0, f64::max);
        assert!(peak > 4.0 * base, "peak {peak} vs base {base}");
    }

    #[test]
    fn slow_ramp_is_monotone() {
        let sc = Scenario::slow_ramp(7, true);
        let mut prev = -1.0;
        for t in (0..sc.duration).step_by(60) {
            let r = sc.profile.intensity(t);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn next_change_contract_holds_for_scenario_profiles() {
        // The event-driven sim relies on change points being
        // conservative: no intensity change may happen strictly between
        // t and the reported next change.
        for sc in Scenario::pack(3, true) {
            let p = &sc.profile;
            let mut t = 0u64;
            let mut guard = 0;
            while t < sc.duration {
                let next = match p.next_change(t) {
                    Some(n) => n.min(sc.duration),
                    None => break,
                };
                assert!(next > t, "{}: change point must advance", sc.name);
                let base = p.intensity(t);
                for u in t + 1..next {
                    assert_eq!(
                        p.intensity(u).to_bits(),
                        base.to_bits(),
                        "{}: unannounced change at {u} (window {t}..{next})",
                        sc.name
                    );
                }
                t = next;
                guard += 1;
                assert!(guard < 100_000, "{}: too many change points", sc.name);
            }
        }
    }
}
