//! YCSB core workload classes.
//!
//! The paper drives Cassandra with the Yahoo! Cloud Serving Benchmark
//! classes A, B, D and F (Section 3.2.1). Each class fixes a read/write
//! mix, which determines how a request stresses CPU versus disk in the
//! service demand model.

/// A YCSB core workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbClass {
    /// Update heavy: 50% reads / 50% writes.
    A,
    /// Read heavy: 95% reads / 5% writes.
    B,
    /// Read latest: inserts records and reads the most recent ones.
    D,
    /// Read-modify-write: reads a record, modifies it, writes it back.
    F,
}

impl YcsbClass {
    /// Fraction of operations that are reads.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbClass::A => 0.5,
            YcsbClass::B => 0.95,
            YcsbClass::D => 0.95,
            YcsbClass::F => 0.5,
        }
    }

    /// Fraction of operations that are writes (inserts/updates).
    pub fn write_fraction(self) -> f64 {
        1.0 - self.read_fraction()
    }

    /// Relative disk pressure per operation compared to class B reads.
    ///
    /// Writes touch the commit log and memtables; read-modify-write (F)
    /// pays for both sides. Read-latest (D) is cache friendly.
    pub fn disk_weight(self) -> f64 {
        match self {
            YcsbClass::A => 1.4,
            YcsbClass::B => 1.0,
            YcsbClass::D => 0.7,
            YcsbClass::F => 1.8,
        }
    }

    /// Relative CPU demand per operation compared to class B.
    pub fn cpu_weight(self) -> f64 {
        match self {
            YcsbClass::A => 1.1,
            YcsbClass::B => 1.0,
            YcsbClass::D => 0.9,
            YcsbClass::F => 1.5,
        }
    }

    /// All classes used by the paper's training runs.
    pub fn all() -> [YcsbClass; 4] {
        [YcsbClass::A, YcsbClass::B, YcsbClass::D, YcsbClass::F]
    }
}

impl std::fmt::Display for YcsbClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            YcsbClass::A => 'A',
            YcsbClass::B => 'B',
            YcsbClass::D => 'D',
            YcsbClass::F => 'F',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for c in YcsbClass::all() {
            assert!((c.read_fraction() + c.write_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn class_a_is_update_heavy() {
        assert_eq!(YcsbClass::A.read_fraction(), 0.5);
        assert!(YcsbClass::B.read_fraction() > 0.9);
    }

    #[test]
    fn f_is_most_expensive() {
        for c in [YcsbClass::A, YcsbClass::B, YcsbClass::D] {
            assert!(YcsbClass::F.disk_weight() > c.disk_weight());
            assert!(YcsbClass::F.cpu_weight() > c.cpu_weight());
        }
    }

    #[test]
    fn display_matches_letter() {
        assert_eq!(YcsbClass::D.to_string(), "D");
    }
}
