//! Load-intensity profiles for the *monitorless* reproduction.
//!
//! The paper drives its services with several load generators:
//!
//! * **LIMBO / HTTPLoadGenerator** profiles for Solr and the three-tier
//!   web application: `sin1000` (a sine between 1 and 1000 req/s) and
//!   `sinnoise1000` (the same base heavily perturbed with random noise) —
//!   [`SineProfile`], [`NoisyProfile`];
//! * **constant target loads** for Memcache and Cassandra (with ranges
//!   like "2K–50K R/s") — [`ConstantProfile`], [`SteppedProfile`];
//! * a **linearly increasing load** used to find the saturation threshold
//!   Υ (Section 2.2) — [`RampProfile`];
//! * **Locust** hatch-and-hold runs for Sockshop: clients hatch linearly
//!   for 700 s to 700 concurrent users, hold for 300 s, three runs started
//!   at 1000/3000/5000 s — [`LocustProfile`], [`ShiftedProfile`],
//!   [`SumProfile`];
//! * a **realistic worst-case cloud trace** with multiple daily patterns
//!   and high variance for the TeaStore evaluation (Section 4.2.1,
//!   citing Shen et al.) — [`DailyPatternProfile`].
//!
//! YCSB workload classes A/B/D/F (Section 3.2.1) are modeled by
//! [`ycsb::YcsbClass`], which fixes each class's read/write mix.
//!
//! Beyond the paper's generators, [`trace::TraceProfile`] replays sparse
//! `(time, rate)` change-point series in the shape of public cluster
//! traces (Google/Azure), with a bundled sample trace and a seeded
//! synthesizer for fleet-scale runs — see the [`trace`] module docs for
//! the trace format. Hostile autoscaling arrival patterns — serverless
//! scale-to-zero bursts, flash crowds, diurnal replays and slow-ramp
//! squeezes — are packaged with their platform parameters in
//! [`scenario::Scenario`] for the bake-off harness.
//!
//! ```
//! use monitorless_workload::{LoadProfile, SineProfile};
//!
//! let sin1000 = SineProfile::sin1000(3600);
//! let peak = (0..3600).map(|t| sin1000.intensity(t)).fold(0.0, f64::max);
//! assert!(peak > 990.0 && peak <= 1000.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod profile;
pub mod scenario;
pub mod trace;
pub mod ycsb;

pub use profile::{
    ConstantProfile, DailyPatternProfile, LoadProfile, LocustProfile, NoisyProfile, RampProfile,
    ShiftedProfile, SineProfile, SteppedProfile, SumProfile,
};
pub use scenario::Scenario;
pub use trace::{TraceError, TraceInterp, TraceProfile};
pub use ycsb::YcsbClass;
