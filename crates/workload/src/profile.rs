//! Load-intensity profiles.

use std::sync::Arc;

use monitorless_std::rng::{Rng, StdRng};

/// A per-second load-intensity function (requests per second).
///
/// Profiles are deterministic functions of time so experiments are
/// reproducible: "noisy" profiles derive their perturbations from a seed.
pub trait LoadProfile: std::fmt::Debug + Send + Sync {
    /// Request rate at second `t` (never negative).
    fn intensity(&self, t: u64) -> f64;

    /// Length of the profile in seconds.
    fn duration(&self) -> u64;

    /// The next second after `t` at which the intensity *may* change, or
    /// `None` if the profile is constant for all seconds after `t`.
    ///
    /// This is the change-point feed for event-driven simulation: an
    /// event queue schedules one load-change event per returned time and
    /// skips the seconds in between. Implementations must be
    /// **conservative** — returning an earlier time than the real change
    /// (or a time where the value turns out unchanged) only costs a
    /// spurious event, but skipping past a real change would desynchronize
    /// the simulation. The default assumes the profile may change every
    /// second, which is always sound.
    fn next_change(&self, t: u64) -> Option<u64> {
        Some(t + 1)
    }

    /// Samples the whole profile as one value per second.
    fn series(&self) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..self.duration()).map(|t| self.intensity(t)).collect()
    }
}

impl<P: LoadProfile + ?Sized> LoadProfile for Arc<P> {
    fn intensity(&self, t: u64) -> f64 {
        (**self).intensity(t)
    }
    fn duration(&self) -> u64 {
        (**self).duration()
    }
    fn next_change(&self, t: u64) -> Option<u64> {
        (**self).next_change(t)
    }
}

/// LIMBO-style sine profile between `min` and `max` req/s.
#[derive(Debug, Clone, PartialEq)]
pub struct SineProfile {
    min: f64,
    max: f64,
    period: u64,
    duration: u64,
}

impl SineProfile {
    /// Creates a sine profile.
    ///
    /// # Panics
    ///
    /// Panics if `max < min` or `period == 0`.
    pub fn new(min: f64, max: f64, period: u64, duration: u64) -> Self {
        assert!(max >= min, "max must be at least min");
        assert!(period > 0, "period must be positive");
        SineProfile {
            min,
            max,
            period,
            duration,
        }
    }

    /// The paper's `sin1000` profile: 1 to 1000 req/s.
    pub fn sin1000(duration: u64) -> Self {
        SineProfile::new(1.0, 1000.0, duration.max(1), duration)
    }
}

impl LoadProfile for SineProfile {
    fn intensity(&self, t: u64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t % self.period) as f64 / self.period as f64;
        // Starts at `min`, peaks at `max` mid-period.
        let unit = 0.5 - 0.5 * phase.cos();
        self.min + (self.max - self.min) * unit
    }

    fn duration(&self) -> u64 {
        self.duration
    }
}

/// Adds seeded multiplicative and additive noise to a base profile —
/// the paper's `sinnoise1000` is "massively modified by adding random
/// noise to increase variability".
#[derive(Debug, Clone)]
pub struct NoisyProfile<P> {
    base: P,
    relative: f64,
    absolute: f64,
    seed: u64,
}

impl<P: LoadProfile> NoisyProfile<P> {
    /// Wraps `base` with relative noise amplitude `relative` (e.g. 0.3 =
    /// ±30%) and absolute noise amplitude `absolute` (req/s).
    pub fn new(base: P, relative: f64, absolute: f64, seed: u64) -> Self {
        NoisyProfile {
            base,
            relative,
            absolute,
            seed,
        }
    }

    /// The paper's `sinnoise1000`: heavy noise on `sin1000`.
    pub fn sinnoise1000(duration: u64, seed: u64) -> NoisyProfile<SineProfile> {
        NoisyProfile::new(SineProfile::sin1000(duration), 0.35, 60.0, seed)
    }
}

fn unit_noise(seed: u64, t: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.gen_range(-1.0..1.0)
}

impl<P: LoadProfile> LoadProfile for NoisyProfile<P> {
    fn intensity(&self, t: u64) -> f64 {
        let base = self.base.intensity(t);
        let n1 = unit_noise(self.seed, t);
        let n2 = unit_noise(self.seed.wrapping_add(1), t);
        (base * (1.0 + self.relative * n1) + self.absolute * n2).max(0.0)
    }

    fn duration(&self) -> u64 {
        self.base.duration()
    }
}

/// Constant target rate (Memcache / Cassandra style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantProfile {
    rate: f64,
    duration: u64,
}

impl ConstantProfile {
    /// Creates a constant-rate profile.
    pub fn new(rate: f64, duration: u64) -> Self {
        ConstantProfile {
            rate: rate.max(0.0),
            duration,
        }
    }
}

impl LoadProfile for ConstantProfile {
    fn intensity(&self, _t: u64) -> f64 {
        self.rate
    }

    fn duration(&self) -> u64 {
        self.duration
    }

    fn next_change(&self, _t: u64) -> Option<u64> {
        None
    }
}

/// Several constant target levels applied back to back — how the paper
/// sweeps "several constant target loads" for Cassandra.
#[derive(Debug, Clone, PartialEq)]
pub struct SteppedProfile {
    levels: Vec<f64>,
    step_duration: u64,
}

impl SteppedProfile {
    /// Creates a stepped profile holding each level for `step_duration`.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `step_duration == 0`.
    pub fn new(levels: Vec<f64>, step_duration: u64) -> Self {
        assert!(!levels.is_empty(), "levels must not be empty");
        assert!(step_duration > 0, "step duration must be positive");
        SteppedProfile {
            levels,
            step_duration,
        }
    }

    /// Evenly spaced levels covering `[lo, hi]` with `n` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `step_duration == 0`.
    pub fn range(lo: f64, hi: f64, n: usize, step_duration: u64) -> Self {
        assert!(n > 0, "need at least one step");
        let levels = (0..n)
            .map(|i| {
                if n == 1 {
                    lo
                } else {
                    lo + (hi - lo) * i as f64 / (n - 1) as f64
                }
            })
            .collect();
        SteppedProfile::new(levels, step_duration)
    }
}

impl LoadProfile for SteppedProfile {
    fn intensity(&self, t: u64) -> f64 {
        let idx = ((t / self.step_duration) as usize).min(self.levels.len() - 1);
        self.levels[idx].max(0.0)
    }

    fn duration(&self) -> u64 {
        self.levels.len() as u64 * self.step_duration
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        let idx = (t / self.step_duration) as usize;
        if idx + 1 >= self.levels.len() {
            None // holding the last level forever
        } else {
            Some((idx as u64 + 1) * self.step_duration)
        }
    }
}

/// Linearly increasing load from `start` to `end` req/s — used for the
/// threshold-calibration run of Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampProfile {
    start: f64,
    end: f64,
    duration: u64,
}

impl RampProfile {
    /// Creates a linear ramp.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0`.
    pub fn new(start: f64, end: f64, duration: u64) -> Self {
        assert!(duration > 0, "duration must be positive");
        RampProfile {
            start,
            end,
            duration,
        }
    }
}

impl LoadProfile for RampProfile {
    fn intensity(&self, t: u64) -> f64 {
        let frac = (t as f64 / self.duration as f64).min(1.0);
        (self.start + (self.end - self.start) * frac).max(0.0)
    }

    fn duration(&self) -> u64 {
        self.duration
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        if t < self.duration {
            Some(t + 1) // still ramping
        } else {
            None // clamped at `end` forever
        }
    }
}

/// Locust-style hatch-and-hold: load grows linearly while clients hatch,
/// then stays constant (Section 4.2.1: hatch to 700 users over 700 s,
/// hold for 300 s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocustProfile {
    max_rate: f64,
    hatch_time: u64,
    hold_time: u64,
}

impl LocustProfile {
    /// Creates a hatch-and-hold profile.
    ///
    /// # Panics
    ///
    /// Panics if `hatch_time == 0`.
    pub fn new(max_rate: f64, hatch_time: u64, hold_time: u64) -> Self {
        assert!(hatch_time > 0, "hatch time must be positive");
        LocustProfile {
            max_rate,
            hatch_time,
            hold_time,
        }
    }

    /// The paper's Sockshop run: 700 clients over 700 s, hold 300 s.
    /// `rate_per_client` converts concurrent users to req/s.
    pub fn sockshop_run(rate_per_client: f64) -> Self {
        LocustProfile::new(700.0 * rate_per_client, 700, 300)
    }
}

impl LoadProfile for LocustProfile {
    fn intensity(&self, t: u64) -> f64 {
        if t >= self.hatch_time + self.hold_time {
            0.0
        } else if t >= self.hatch_time {
            self.max_rate
        } else {
            self.max_rate * t as f64 / self.hatch_time as f64
        }
    }

    fn duration(&self) -> u64 {
        self.hatch_time + self.hold_time
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        if t < self.hatch_time {
            Some(t + 1) // hatching: grows every second
        } else if t < self.hatch_time + self.hold_time {
            Some(self.hatch_time + self.hold_time) // holding: next change is the drop to zero
        } else {
            None // run is over
        }
    }
}

/// Delays a profile by `offset` seconds (zero before it starts).
#[derive(Debug, Clone)]
pub struct ShiftedProfile<P> {
    base: P,
    offset: u64,
}

impl<P: LoadProfile> ShiftedProfile<P> {
    /// Starts `base` at `offset`.
    pub fn new(base: P, offset: u64) -> Self {
        ShiftedProfile { base, offset }
    }
}

impl<P: LoadProfile> LoadProfile for ShiftedProfile<P> {
    fn intensity(&self, t: u64) -> f64 {
        if t < self.offset {
            0.0
        } else {
            self.base.intensity(t - self.offset)
        }
    }

    fn duration(&self) -> u64 {
        self.offset + self.base.duration()
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        if t < self.offset {
            Some(self.offset) // quiet until the base starts
        } else {
            self.base
                .next_change(t - self.offset)
                .map(|n| n + self.offset)
        }
    }
}

/// Sum of several profiles — e.g. the three overlapping Locust runs of
/// the Sockshop evaluation.
#[derive(Debug)]
pub struct SumProfile {
    parts: Vec<Box<dyn LoadProfile>>,
}

impl SumProfile {
    /// Creates a sum over the given profiles.
    pub fn new(parts: Vec<Box<dyn LoadProfile>>) -> Self {
        SumProfile { parts }
    }

    /// The paper's Sockshop load: three 1000-second Locust runs started
    /// at 1000 s, 3000 s and 5000 s.
    pub fn sockshop(rate_per_client: f64) -> Self {
        SumProfile::new(vec![
            Box::new(ShiftedProfile::new(LocustProfile::sockshop_run(rate_per_client), 1000)),
            Box::new(ShiftedProfile::new(LocustProfile::sockshop_run(rate_per_client), 3000)),
            Box::new(ShiftedProfile::new(LocustProfile::sockshop_run(rate_per_client), 5000)),
        ])
    }
}

impl LoadProfile for SumProfile {
    fn intensity(&self, t: u64) -> f64 {
        self.parts.iter().map(|p| p.intensity(t)).sum()
    }

    fn duration(&self) -> u64 {
        self.parts.iter().map(|p| p.duration()).max().unwrap_or(0)
    }

    fn next_change(&self, t: u64) -> Option<u64> {
        self.parts.iter().filter_map(|p| p.next_change(t)).min()
    }
}

/// A realistic worst-case cloud trace: several daily harmonics, load
/// bursts and heavy noise (Section 4.2.1, following the business-critical
/// workload characterization of Shen et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyPatternProfile {
    base: f64,
    amplitude: f64,
    day_length: u64,
    duration: u64,
    seed: u64,
}

impl DailyPatternProfile {
    /// Creates a daily-pattern trace.
    ///
    /// `day_length` compresses a "day" into the experiment duration so
    /// multiple daily patterns occur within one run, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `day_length == 0`.
    pub fn new(base: f64, amplitude: f64, day_length: u64, duration: u64, seed: u64) -> Self {
        assert!(day_length > 0, "day length must be positive");
        DailyPatternProfile {
            base,
            amplitude,
            day_length,
            duration,
            seed,
        }
    }
}

impl LoadProfile for DailyPatternProfile {
    fn intensity(&self, t: u64) -> f64 {
        let day =
            2.0 * std::f64::consts::PI * (t % self.day_length) as f64 / self.day_length as f64;
        // Fundamental + harmonics give a two-peaked "business day".
        let shape = 0.5 - 0.35 * day.cos() + 0.25 * (2.0 * day).sin() + 0.1 * (3.0 * day).cos();
        // Occasional bursts: a few percent of seconds see a surge.
        let burst_roll = unit_noise(self.seed.wrapping_add(17), t / 30);
        let burst = if burst_roll > 0.9 { 0.6 } else { 0.0 };
        let noise = 0.15 * unit_noise(self.seed, t);
        (self.base + self.amplitude * (shape + burst) * (1.0 + noise)).max(0.0)
    }

    fn duration(&self) -> u64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_respects_bounds_and_period() {
        let p = SineProfile::new(10.0, 100.0, 100, 300);
        for t in 0..300 {
            let v = p.intensity(t);
            assert!((10.0..=100.0).contains(&v), "t={t} v={v}");
        }
        assert!((p.intensity(0) - 10.0).abs() < 1e-9);
        assert!((p.intensity(50) - 100.0).abs() < 1e-9);
        assert_eq!(p.intensity(0), p.intensity(100));
    }

    #[test]
    fn sin1000_range() {
        let p = SineProfile::sin1000(1000);
        let s = p.series();
        let max = s.iter().cloned().fold(0.0, f64::max);
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= 1000.0 && max > 990.0);
        assert!((min - 1.0).abs() < 1.0);
    }

    #[test]
    fn noisy_profile_varies_but_tracks_base() {
        let p = NoisyProfile::<SineProfile>::sinnoise1000(500, 42);
        let base = SineProfile::sin1000(500);
        let mut differs = 0;
        for t in 0..500 {
            let v = p.intensity(t);
            assert!(v >= 0.0);
            if (v - base.intensity(t)).abs() > 1.0 {
                differs += 1;
            }
        }
        assert!(differs > 400, "noise should perturb most seconds");
        // Deterministic for the same seed.
        let p2 = NoisyProfile::<SineProfile>::sinnoise1000(500, 42);
        assert_eq!(p.intensity(123), p2.intensity(123));
    }

    #[test]
    fn constant_is_flat() {
        let p = ConstantProfile::new(250.0, 60);
        assert_eq!(p.intensity(0), 250.0);
        assert_eq!(p.intensity(59), 250.0);
        assert_eq!(p.duration(), 60);
    }

    #[test]
    fn stepped_holds_each_level() {
        let p = SteppedProfile::new(vec![10.0, 20.0, 30.0], 5);
        assert_eq!(p.intensity(0), 10.0);
        assert_eq!(p.intensity(4), 10.0);
        assert_eq!(p.intensity(5), 20.0);
        assert_eq!(p.intensity(14), 30.0);
        assert_eq!(p.intensity(100), 30.0);
        assert_eq!(p.duration(), 15);
    }

    #[test]
    fn stepped_range_is_evenly_spaced() {
        let p = SteppedProfile::range(100.0, 300.0, 3, 10);
        assert_eq!(p.intensity(0), 100.0);
        assert_eq!(p.intensity(10), 200.0);
        assert_eq!(p.intensity(20), 300.0);
    }

    #[test]
    fn ramp_is_linear() {
        let p = RampProfile::new(0.0, 100.0, 100);
        assert_eq!(p.intensity(0), 0.0);
        assert_eq!(p.intensity(50), 50.0);
        assert_eq!(p.intensity(100), 100.0);
        assert_eq!(p.intensity(200), 100.0);
    }

    #[test]
    fn locust_hatches_then_holds() {
        let p = LocustProfile::new(700.0, 700, 300);
        assert_eq!(p.intensity(0), 0.0);
        assert!((p.intensity(350) - 350.0).abs() < 1.0);
        assert_eq!(p.intensity(700), 700.0);
        assert_eq!(p.intensity(999), 700.0);
        assert_eq!(p.intensity(1000), 0.0);
        assert_eq!(p.duration(), 1000);
    }

    #[test]
    fn shifted_delays_start() {
        let p = ShiftedProfile::new(ConstantProfile::new(10.0, 100), 50);
        assert_eq!(p.intensity(49), 0.0);
        assert_eq!(p.intensity(50), 10.0);
        assert_eq!(p.duration(), 150);
    }

    #[test]
    fn sockshop_runs_are_disjoint_pulses() {
        let p = SumProfile::sockshop(1.0);
        assert_eq!(p.duration(), 6000);
        assert_eq!(p.intensity(0), 0.0);
        // At t=3900 run 2 holds at 700 and run 3 has not started.
        assert!((p.intensity(3900) - 700.0).abs() < 1.0);
        // The paper's 1000-second runs start at 1000/3000/5000 s, so they
        // never overlap and the plateau is the per-run maximum.
        let max = (0..6000).map(|t| p.intensity(t)).fold(0.0, f64::max);
        assert!(max <= 700.0 + 1e-9);
        // Quiet gaps between runs.
        assert_eq!(p.intensity(2500), 0.0);
        assert_eq!(p.intensity(4500), 0.0);
    }

    #[test]
    fn daily_pattern_is_bursty_and_bounded() {
        let p = DailyPatternProfile::new(50.0, 400.0, 2000, 6000, 9);
        let s: Vec<f64> = (0..6000).map(|t| p.intensity(t)).collect();
        assert!(s.iter().all(|&v| v >= 0.0));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let peak = s.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 1.8 * mean, "peak {peak} vs mean {mean}");
        // Deterministic.
        assert_eq!(p.intensity(777), p.intensity(777));
    }

    /// Brute-force check of the `next_change` contract: walking the
    /// profile only through its reported change points must reproduce the
    /// per-second intensity series exactly (a skipped real change would
    /// show up as a mismatch in the held value).
    fn assert_next_change_sound(p: &dyn LoadProfile, horizon: u64) {
        let mut t = 0;
        let mut held = p.intensity(0);
        let mut next = p.next_change(0);
        for s in 0..horizon {
            while t < s {
                match next {
                    Some(n) => {
                        t = n.min(s);
                        if t == n {
                            held = p.intensity(n);
                            next = p.next_change(n);
                        }
                    }
                    None => t = s, // constant forever: hold
                }
            }
            assert_eq!(
                held.to_bits(),
                p.intensity(s).to_bits(),
                "next_change skipped a real change at t={s}"
            );
        }
        if let Some(n) = p.next_change(0) {
            assert!(n > 0, "next_change must advance time");
        }
    }

    #[test]
    fn next_change_is_conservative_for_all_profiles() {
        let profiles: Vec<Box<dyn LoadProfile>> = vec![
            Box::new(ConstantProfile::new(250.0, 60)),
            Box::new(SteppedProfile::new(vec![10.0, 20.0, 30.0], 5)),
            Box::new(SteppedProfile::range(100.0, 300.0, 3, 10)),
            Box::new(RampProfile::new(0.0, 100.0, 100)),
            Box::new(LocustProfile::new(700.0, 70, 30)),
            Box::new(ShiftedProfile::new(ConstantProfile::new(10.0, 100), 50)),
            Box::new(ShiftedProfile::new(LocustProfile::new(9.0, 8, 7), 13)),
            Box::new(SumProfile::sockshop(0.2)),
            Box::new(SineProfile::sin1000(300)),
            Box::new(NoisyProfile::<SineProfile>::sinnoise1000(120, 3)),
        ];
        for p in &profiles {
            assert_next_change_sound(p.as_ref(), p.duration() + 50);
        }
    }

    #[test]
    fn sparse_profiles_report_few_change_points() {
        // Event-driven benefit: a stepped profile holding three levels
        // reports exactly two interior change points, then goes quiet.
        let p = SteppedProfile::new(vec![10.0, 20.0, 30.0], 100);
        assert_eq!(p.next_change(0), Some(100));
        assert_eq!(p.next_change(99), Some(100));
        assert_eq!(p.next_change(100), Some(200));
        assert_eq!(p.next_change(200), None);
        assert_eq!(ConstantProfile::new(5.0, 1000).next_change(0), None);
        let l = LocustProfile::new(700.0, 700, 300);
        assert_eq!(l.next_change(700), Some(1000));
        assert_eq!(l.next_change(1000), None);
        let r = RampProfile::new(0.0, 1.0, 10);
        assert_eq!(r.next_change(9), Some(10));
        assert_eq!(r.next_change(10), None);
    }

    #[test]
    fn profiles_are_object_safe() {
        let v: Vec<Box<dyn LoadProfile>> = vec![
            Box::new(ConstantProfile::new(1.0, 10)),
            Box::new(RampProfile::new(0.0, 1.0, 10)),
        ];
        assert_eq!(v[0].duration(), 10);
    }
}
