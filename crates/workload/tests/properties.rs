//! Property-based tests for load profiles.

use monitorless_workload::{
    ConstantProfile, DailyPatternProfile, LoadProfile, LocustProfile, NoisyProfile, RampProfile,
    ShiftedProfile, SineProfile, SteppedProfile, SumProfile,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn all_profiles_are_nonnegative(
        t in 0u64..5000,
        seed in 0u64..100,
        max in 1.0_f64..5000.0,
    ) {
        let profiles: Vec<Box<dyn LoadProfile>> = vec![
            Box::new(SineProfile::new(1.0, max, 500, 1000)),
            Box::new(NoisyProfile::new(SineProfile::new(1.0, max, 500, 1000), 0.5, 50.0, seed)),
            Box::new(ConstantProfile::new(max, 1000)),
            Box::new(RampProfile::new(0.0, max, 1000)),
            Box::new(SteppedProfile::range(1.0, max, 5, 100)),
            Box::new(LocustProfile::new(max, 700, 300)),
            Box::new(DailyPatternProfile::new(10.0, max, 300, 1000, seed)),
        ];
        for p in &profiles {
            prop_assert!(p.intensity(t) >= 0.0);
            prop_assert!(p.intensity(t).is_finite());
        }
    }

    #[test]
    fn sine_stays_within_bounds(
        min in 0.0_f64..100.0,
        extra in 1.0_f64..1000.0,
        period in 10u64..500,
        t in 0u64..2000,
    ) {
        let p = SineProfile::new(min, min + extra, period, 1000);
        let v = p.intensity(t);
        prop_assert!(v >= min - 1e-9 && v <= min + extra + 1e-9);
    }

    #[test]
    fn shifting_preserves_values(
        offset in 0u64..500,
        t in 0u64..1000,
    ) {
        let base = RampProfile::new(0.0, 100.0, 400);
        let shifted = ShiftedProfile::new(RampProfile::new(0.0, 100.0, 400), offset);
        if t >= offset {
            prop_assert_eq!(shifted.intensity(t), base.intensity(t - offset));
        } else {
            prop_assert_eq!(shifted.intensity(t), 0.0);
        }
    }

    #[test]
    fn sum_profile_is_additive(t in 0u64..2000, rate in 0.1_f64..10.0) {
        let sum = SumProfile::new(vec![
            Box::new(ConstantProfile::new(rate, 1000)),
            Box::new(ConstantProfile::new(2.0 * rate, 1000)),
        ]);
        prop_assert!((sum.intensity(t) - 3.0 * rate).abs() < 1e-9);
    }

    #[test]
    fn noisy_profile_is_deterministic_per_seed(seed in 0u64..1000, t in 0u64..1000) {
        let a = NoisyProfile::new(SineProfile::sin1000(1000), 0.35, 60.0, seed);
        let b = NoisyProfile::new(SineProfile::sin1000(1000), 0.35, 60.0, seed);
        prop_assert_eq!(a.intensity(t), b.intensity(t));
    }
}
