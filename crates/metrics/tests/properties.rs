//! Property-based tests for the metric model.

use monitorless_metrics::catalog::{pseudo_noise, Catalog};
use monitorless_metrics::kind::MetricKind;
use monitorless_metrics::rates::{CounterAccumulator, RateConverter};
use monitorless_metrics::signals::{ContainerSignals, HostSignals};
use proptest::prelude::*;

proptest! {
    #[test]
    fn accumulate_then_rate_recovers_inputs(
        rates in proptest::collection::vec(0.0_f64..1e7, 2..30),
    ) {
        let kinds = vec![MetricKind::Counter];
        let mut acc = CounterAccumulator::new(kinds.clone());
        let mut conv = RateConverter::new(kinds);
        let mut out = Vec::new();
        for r in &rates {
            let raw = acc.accumulate(&[*r]);
            out.push(conv.convert(&raw, 1.0)[0]);
        }
        // First interval is dropped; the rest roundtrip.
        for (i, r) in rates.iter().enumerate().skip(1) {
            prop_assert!((out[i] - r).abs() < 1e-6 * (1.0 + r));
        }
    }

    #[test]
    fn negative_rates_roundtrip_clamped_to_zero(
        rates in proptest::collection::vec(-1e6_f64..1e6, 2..30),
    ) {
        // The kernel never reports a negative rate, so the accumulator
        // clamps negative inputs to zero instead of letting the counter
        // run backwards; the round trip therefore recovers max(r, 0)
        // after the dropped first interval.
        let kinds = vec![MetricKind::Counter];
        let mut acc = CounterAccumulator::new(kinds.clone());
        let mut conv = RateConverter::new(kinds);
        let mut out = Vec::new();
        for r in &rates {
            let raw = acc.accumulate(&[*r]);
            out.push(conv.convert(&raw, 1.0)[0]);
        }
        for (i, r) in rates.iter().enumerate().skip(1) {
            let expected = r.max(0.0);
            prop_assert!((out[i] - expected).abs() < 1e-6 * (1.0 + expected.abs()));
        }
    }

    #[test]
    fn decreasing_raw_counters_never_yield_negative_rates(
        raws in proptest::collection::vec(0.0_f64..1e9, 2..30),
    ) {
        // Fed raw samples directly (bypassing the accumulator), any
        // decrease looks like a counter reset and yields rate 0 rather
        // than a negative spike.
        let mut conv = RateConverter::new(vec![MetricKind::Counter]);
        for raw in &raws {
            let rate = conv.convert(&[*raw], 1.0)[0];
            prop_assert!(rate >= 0.0);
        }
    }

    #[test]
    fn counters_are_monotone_under_any_input(
        values in proptest::collection::vec(-100.0_f64..1e6, 1..30),
    ) {
        let mut acc = CounterAccumulator::new(vec![MetricKind::Counter]);
        let mut last = 0.0;
        for v in values {
            let raw = acc.accumulate(&[v])[0];
            prop_assert!(raw >= last);
            last = raw;
        }
    }

    #[test]
    fn pseudo_noise_is_bounded_and_deterministic(
        idx in 0u64..10_000,
        t in 0u64..10_000,
        seed in 0u64..1000,
    ) {
        let n = pseudo_noise(idx, t, seed);
        prop_assert!((-1.0..=1.0).contains(&n));
        prop_assert_eq!(n, pseudo_noise(idx, t, seed));
    }

    #[test]
    fn host_expansion_is_nonnegative_and_sized(
        cpu in 0.0_f64..1.0,
        net in 0.0_f64..1e9,
        t in 0u64..500,
    ) {
        let catalog = Catalog::standard();
        let hs = HostSignals {
            cpu_util: cpu,
            cpu_user: cpu * 0.7,
            net_in_bytes: net,
            ..HostSignals::default()
        };
        let v = catalog.expand_host(&hs, t, 1);
        prop_assert_eq!(v.len(), 952);
        prop_assert!(v.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn container_utilization_metric_tracks_signal(util in 0.0_f64..1.0) {
        let catalog = Catalog::standard();
        let cs = ContainerSignals {
            cpu_util: util,
            ..ContainerSignals::default()
        };
        let v = catalog.expand_container(&cs, 0, 0);
        let idx = catalog.container_index("containers.cpu.util").unwrap();
        prop_assert!((v[idx] - util * 100.0).abs() < 5.0 + util * 5.0);
    }

    #[test]
    fn bytes_preprocessing_is_monotone(a in 0.0_f64..1e12, b in 0.0_f64..1e12) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(MetricKind::Bytes.preprocess(lo) <= MetricKind::Bytes.preprocess(hi));
    }
}
