//! PCP-style platform-metric model for the *monitorless* reproduction.
//!
//! The paper collects **1040 platform metrics** with Performance Co-Pilot:
//! 952 scoped to the host and 88 scoped to each container (Section 3.3).
//! This crate reproduces that contract:
//!
//! * a [`catalog::Catalog`] of metric definitions with PCP-like
//!   names (`kernel.all.pswitch`, `network.tcp.currestab`,
//!   `cgroup.cpusched.throttled`, …), each tagged with a
//!   [`kind::MetricKind`] (counter / gauge / utilization /
//!   bytes / constant) and a [`kind::Scope`];
//! * the *signal* layer ([`signals`]): ~50 physically meaningful host and
//!   container quantities that a workload simulator computes every second,
//!   from which the full 1040-metric vector is expanded deterministically
//!   (per-device shares plus reproducible measurement noise) — mirroring
//!   how most real PCP metrics are per-device refinements of a few
//!   underlying quantities;
//! * counter semantics: counters are *emitted cumulatively* by
//!   [`rates::CounterAccumulator`] and differentiated back to per-second
//!   rates by [`rates::RateConverter`], exercising the paper's
//!   "convert counters into rates" preprocessing step;
//! * a [`agent::MonitoringAgent`] that assembles, per
//!   second, one host vector plus one vector per running container and
//!   concatenates them into the per-instance metric vector `M_{I,t}`.
//!
//! ```
//! use monitorless_metrics::catalog::Catalog;
//!
//! let catalog = Catalog::standard();
//! assert_eq!(catalog.host_len(), 952);
//! assert_eq!(catalog.container_len(), 88);
//! assert_eq!(catalog.len(), 1040);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod catalog;
pub mod kind;
pub mod rates;
pub mod sample;
pub mod signals;

pub use agent::MonitoringAgent;
pub use catalog::{Catalog, MetricDef};
pub use kind::{MetricKind, Scope};
pub use sample::{InstanceId, NodeId, Observation};
pub use signals::{ContainerSignals, HostSignals};
