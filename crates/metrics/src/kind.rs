//! Metric kinds and scopes.

/// What a metric measures and therefore how it must be preprocessed
/// before reaching the model (paper Sections 3.1 and 3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Monotonically increasing counter; must be converted to a
    /// per-second rate.
    Counter,
    /// Instantaneous value with no special scaling.
    Gauge,
    /// Value already on a relative 0–100% scale.
    Utilization,
    /// Byte-valued quantity with no known maximum; log-scaled to
    /// emphasize magnitude over absolute value (Section 3.3.2).
    Bytes,
    /// Hardware-inventory constant (e.g. `hinv.ncpu`).
    Constant,
}

impl MetricKind {
    /// Applies the kind-specific scaling used before model training.
    ///
    /// Counters are assumed to have already been converted to rates by
    /// [`crate::rates::RateConverter`]; rates and byte-valued metrics are
    /// compressed to `log10(1 + v)`.
    pub fn preprocess(self, v: f64) -> f64 {
        match self {
            MetricKind::Bytes => (1.0 + v.max(0.0)).log10(),
            MetricKind::Counter
            | MetricKind::Gauge
            | MetricKind::Utilization
            | MetricKind::Constant => v,
        }
    }
}

/// Whether a metric describes the host or one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Host-level metric (952 in the standard catalog); shared by every
    /// container on the node at a given time.
    Host,
    /// Container-level metric (88 in the standard catalog); specific to
    /// one service instance.
    Container,
}

monitorless_std::json_enum!(MetricKind {
    Counter,
    Gauge,
    Utilization,
    Bytes,
    Constant,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_log_scaled() {
        assert_eq!(MetricKind::Bytes.preprocess(0.0), 0.0);
        assert!((MetricKind::Bytes.preprocess(999.0) - 3.0).abs() < 1e-12);
        // Negative transient values are clamped before the log.
        assert_eq!(MetricKind::Bytes.preprocess(-5.0), 0.0);
    }

    #[test]
    fn non_bytes_pass_through() {
        for kind in [
            MetricKind::Counter,
            MetricKind::Gauge,
            MetricKind::Utilization,
            MetricKind::Constant,
        ] {
            assert_eq!(kind.preprocess(42.5), 42.5);
        }
    }
}
