//! Counter accumulation and rate conversion.
//!
//! PCP reports most kernel metrics as monotonically increasing counters;
//! the paper's first preprocessing step converts them to per-second rates
//! (Section 3.1). [`CounterAccumulator`] plays the kernel's role
//! (integrating instantaneous rates into cumulative counters) and
//! [`RateConverter`] plays the agent's role (differentiating successive
//! raw samples back into rates).

use crate::kind::MetricKind;

/// Integrates per-second rates into cumulative counter values for the
/// counter-kind entries of a metric vector; other kinds pass through.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterAccumulator {
    kinds: Vec<MetricKind>,
    totals: Vec<f64>,
}

impl CounterAccumulator {
    /// Creates an accumulator for a vector with the given kinds.
    pub fn new(kinds: Vec<MetricKind>) -> Self {
        let totals = vec![0.0; kinds.len()];
        CounterAccumulator { kinds, totals }
    }

    /// Folds one tick of instantaneous values into raw "as reported"
    /// values: counters become cumulative, everything else is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `values` has a different length than the kinds vector.
    pub fn accumulate(&mut self, values: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(values.len());
        self.accumulate_into(values, &mut out);
        out
    }

    /// Like [`CounterAccumulator::accumulate`] but writes into `out`,
    /// reusing its capacity (allocation-free once grown).
    ///
    /// # Panics
    ///
    /// Panics if `values` has a different length than the kinds vector.
    pub fn accumulate_into(&mut self, values: &[f64], out: &mut Vec<f64>) {
        assert_eq!(values.len(), self.kinds.len(), "length mismatch");
        out.clear();
        out.extend(
            values
                .iter()
                .zip(self.kinds.iter())
                .zip(self.totals.iter_mut())
                .map(|((&v, kind), total)| match kind {
                    MetricKind::Counter => {
                        *total += v.max(0.0);
                        *total
                    }
                    _ => v,
                }),
        );
    }
}

/// Converts successive raw samples into per-second rates for counter-kind
/// entries; other kinds pass through.
///
/// The first sample yields rate 0 for counters (no predecessor), matching
/// how monitoring agents discard the first interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RateConverter {
    kinds: Vec<MetricKind>,
    previous: Option<Vec<f64>>,
}

impl RateConverter {
    /// Creates a converter for a vector with the given kinds.
    pub fn new(kinds: Vec<MetricKind>) -> Self {
        RateConverter {
            kinds,
            previous: None,
        }
    }

    /// Converts one raw sample (interval `dt_seconds` since the previous
    /// one) into the processed vector.
    ///
    /// Counter resets (value decreasing) are treated as a restart and
    /// yield rate 0 for that interval.
    ///
    /// # Panics
    ///
    /// Panics if `raw` has a different length than the kinds vector, or
    /// if `dt_seconds` is not positive.
    pub fn convert(&mut self, raw: &[f64], dt_seconds: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(raw.len());
        self.convert_into(raw, dt_seconds, &mut out);
        out
    }

    /// Like [`RateConverter::convert`] but writes into `out`, reusing its
    /// capacity. The retained previous sample is updated in place, so the
    /// call is allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if `raw` has a different length than the kinds vector, or
    /// if `dt_seconds` is not positive.
    pub fn convert_into(&mut self, raw: &[f64], dt_seconds: f64, out: &mut Vec<f64>) {
        assert_eq!(raw.len(), self.kinds.len(), "length mismatch");
        assert!(dt_seconds > 0.0, "dt must be positive");
        out.clear();
        match &self.previous {
            None => out.extend(
                raw.iter()
                    .zip(self.kinds.iter())
                    .map(|(&v, kind)| match kind {
                        MetricKind::Counter => 0.0,
                        _ => v,
                    }),
            ),
            Some(prev) => out.extend(raw.iter().zip(prev).zip(self.kinds.iter()).map(
                |((&v, &p), kind)| match kind {
                    MetricKind::Counter => {
                        if v >= p {
                            (v - p) / dt_seconds
                        } else {
                            0.0
                        }
                    }
                    _ => v,
                },
            )),
        }
        match &mut self.previous {
            Some(prev) => prev.copy_from_slice(raw),
            None => self.previous = Some(raw.to_vec()),
        }
    }

    /// Forgets the previous sample (e.g. after a container restart).
    pub fn reset(&mut self) {
        self.previous = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MetricKind as K;

    #[test]
    fn accumulate_then_differentiate_roundtrips() {
        let kinds = vec![K::Counter, K::Gauge, K::Utilization];
        let mut acc = CounterAccumulator::new(kinds.clone());
        let mut conv = RateConverter::new(kinds);
        let rates = [[10.0, 5.0, 50.0], [20.0, 6.0, 60.0], [30.0, 7.0, 70.0]];
        let mut out = Vec::new();
        for r in &rates {
            let raw = acc.accumulate(r);
            out.push(conv.convert(&raw, 1.0));
        }
        // First counter interval is dropped; later ones recover the rates.
        assert_eq!(out[0], vec![0.0, 5.0, 50.0]);
        assert_eq!(out[1], vec![20.0, 6.0, 60.0]);
        assert_eq!(out[2], vec![30.0, 7.0, 70.0]);
    }

    #[test]
    fn counters_are_monotone() {
        let mut acc = CounterAccumulator::new(vec![K::Counter]);
        let a = acc.accumulate(&[3.0])[0];
        let b = acc.accumulate(&[1.0])[0];
        assert!(b >= a);
    }

    #[test]
    fn counter_reset_yields_zero_rate() {
        let mut conv = RateConverter::new(vec![K::Counter]);
        conv.convert(&[100.0], 1.0);
        let out = conv.convert(&[5.0], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn dt_scaling() {
        let mut conv = RateConverter::new(vec![K::Counter]);
        conv.convert(&[0.0], 1.0);
        let out = conv.convert(&[10.0], 2.0);
        assert_eq!(out[0], 5.0);
    }

    #[test]
    fn reset_forgets_history() {
        let mut conv = RateConverter::new(vec![K::Counter]);
        conv.convert(&[50.0], 1.0);
        conv.reset();
        let out = conv.convert(&[60.0], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut conv = RateConverter::new(vec![K::Counter]);
        let _ = conv.convert(&[1.0, 2.0], 1.0);
    }
}
