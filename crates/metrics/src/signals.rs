//! The signal layer: the physical quantities a simulator provides each
//! second, from which the full metric catalog is expanded.
//!
//! Real PCP exports hundreds of metrics, but most are per-device or
//! per-protocol refinements of a much smaller set of underlying
//! quantities (total CPU time, bytes moved, established connections, …).
//! The catalog references these signals symbolically via [`HostSignal`]
//! and [`ContainerSignal`].

/// Host-level quantities for one node at one second.
///
/// Utilizations are fractions in `[0, 1]`; rates are per second; byte
/// quantities are bytes (totals) or bytes/second (rates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostSignals {
    /// Overall CPU utilization.
    pub cpu_util: f64,
    /// User-mode share of CPU time.
    pub cpu_user: f64,
    /// System-mode share of CPU time.
    pub cpu_sys: f64,
    /// I/O-wait share of CPU time.
    pub cpu_iowait: f64,
    /// Context switches per second.
    pub ctx_switch_rate: f64,
    /// Interrupts per second.
    pub intr_rate: f64,
    /// System calls per second.
    pub syscall_rate: f64,
    /// Number of processes.
    pub nprocs: f64,
    /// Runnable processes.
    pub runnable: f64,
    /// 1-minute load average.
    pub load1: f64,
    /// Memory utilization.
    pub mem_util: f64,
    /// Used memory in bytes.
    pub mem_used_bytes: f64,
    /// Page-cache size in bytes.
    pub mem_cached_bytes: f64,
    /// Dirty pages in bytes.
    pub mem_dirty_bytes: f64,
    /// Pages paged in per second.
    pub pgin_rate: f64,
    /// Pages paged out per second.
    pub pgout_rate: f64,
    /// Page faults per second.
    pub pgfault_rate: f64,
    /// Swap activity (pages/second).
    pub swap_rate: f64,
    /// Network bytes received per second.
    pub net_in_bytes: f64,
    /// Network bytes sent per second.
    pub net_out_bytes: f64,
    /// Packets received per second.
    pub net_in_pkts: f64,
    /// Packets sent per second.
    pub net_out_pkts: f64,
    /// Network errors per second.
    pub net_err_rate: f64,
    /// Network utilization (fraction of link capacity).
    pub net_util: f64,
    /// Currently established TCP connections.
    pub tcp_estab: f64,
    /// TCP sockets in use.
    pub tcp_inuse: f64,
    /// TCP segments retransmitted per second.
    pub tcp_retrans: f64,
    /// Disk bytes read per second.
    pub disk_read_bytes: f64,
    /// Disk bytes written per second.
    pub disk_write_bytes: f64,
    /// Disk operations per second.
    pub disk_iops: f64,
    /// Average disk queue length (`disk.all.aveq` in PCP).
    pub disk_aveq: f64,
    /// Disk busy fraction.
    pub disk_util: f64,
    /// Free inodes.
    pub inodes_free: f64,
}

/// Symbolic reference to one [`HostSignals`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum HostSignal {
    CpuUtil,
    CpuUser,
    CpuSys,
    CpuIowait,
    CtxSwitchRate,
    IntrRate,
    SyscallRate,
    NProcs,
    Runnable,
    Load1,
    MemUtil,
    MemUsedBytes,
    MemCachedBytes,
    MemDirtyBytes,
    PgInRate,
    PgOutRate,
    PgFaultRate,
    SwapRate,
    NetInBytes,
    NetOutBytes,
    NetInPkts,
    NetOutPkts,
    NetErrRate,
    NetUtil,
    TcpEstab,
    TcpInuse,
    TcpRetrans,
    DiskReadBytes,
    DiskWriteBytes,
    DiskIops,
    DiskAveq,
    DiskUtil,
    InodesFree,
}

impl HostSignal {
    /// Reads the referenced field.
    pub fn value(self, s: &HostSignals) -> f64 {
        match self {
            HostSignal::CpuUtil => s.cpu_util,
            HostSignal::CpuUser => s.cpu_user,
            HostSignal::CpuSys => s.cpu_sys,
            HostSignal::CpuIowait => s.cpu_iowait,
            HostSignal::CtxSwitchRate => s.ctx_switch_rate,
            HostSignal::IntrRate => s.intr_rate,
            HostSignal::SyscallRate => s.syscall_rate,
            HostSignal::NProcs => s.nprocs,
            HostSignal::Runnable => s.runnable,
            HostSignal::Load1 => s.load1,
            HostSignal::MemUtil => s.mem_util,
            HostSignal::MemUsedBytes => s.mem_used_bytes,
            HostSignal::MemCachedBytes => s.mem_cached_bytes,
            HostSignal::MemDirtyBytes => s.mem_dirty_bytes,
            HostSignal::PgInRate => s.pgin_rate,
            HostSignal::PgOutRate => s.pgout_rate,
            HostSignal::PgFaultRate => s.pgfault_rate,
            HostSignal::SwapRate => s.swap_rate,
            HostSignal::NetInBytes => s.net_in_bytes,
            HostSignal::NetOutBytes => s.net_out_bytes,
            HostSignal::NetInPkts => s.net_in_pkts,
            HostSignal::NetOutPkts => s.net_out_pkts,
            HostSignal::NetErrRate => s.net_err_rate,
            HostSignal::NetUtil => s.net_util,
            HostSignal::TcpEstab => s.tcp_estab,
            HostSignal::TcpInuse => s.tcp_inuse,
            HostSignal::TcpRetrans => s.tcp_retrans,
            HostSignal::DiskReadBytes => s.disk_read_bytes,
            HostSignal::DiskWriteBytes => s.disk_write_bytes,
            HostSignal::DiskIops => s.disk_iops,
            HostSignal::DiskAveq => s.disk_aveq,
            HostSignal::DiskUtil => s.disk_util,
            HostSignal::InodesFree => s.inodes_free,
        }
    }
}

/// Container-level quantities for one service instance at one second.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContainerSignals {
    /// CPU utilization relative to the container's limit, in `[0, 1]`.
    pub cpu_util: f64,
    /// Absolute CPU usage in cores.
    pub cpu_usage_cores: f64,
    /// cgroup CFS throttle events per second.
    pub throttled_rate: f64,
    /// cgroup CFS enforcement periods per second.
    pub periods_rate: f64,
    /// Memory utilization relative to the limit, in `[0, 1]`.
    pub mem_util: f64,
    /// Memory usage in bytes.
    pub mem_usage_bytes: f64,
    /// Page-cache bytes charged to the container.
    pub mem_cache_bytes: f64,
    /// Memory-mapped bytes.
    pub mem_mapped_bytes: f64,
    /// Active file-backed pages (bytes).
    pub mem_active_file: f64,
    /// Inactive file-backed pages (bytes).
    pub mem_inactive_file: f64,
    /// Inactive anonymous pages (bytes).
    pub mem_inactive_anon: f64,
    /// Kernel-stack bytes.
    pub kernel_stack: f64,
    /// Page faults per second.
    pub pgfault_rate: f64,
    /// Bytes received per second.
    pub net_in_bytes: f64,
    /// Bytes sent per second.
    pub net_out_bytes: f64,
    /// Open TCP connections.
    pub tcp_conns: f64,
    /// Disk bytes read per second.
    pub disk_read_bytes: f64,
    /// Disk bytes written per second.
    pub disk_write_bytes: f64,
    /// Block-I/O queue depth.
    pub disk_queue: f64,
    /// Processes in the container.
    pub nprocs: f64,
    /// Threads in the container.
    pub nthreads: f64,
}

/// Symbolic reference to one [`ContainerSignals`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ContainerSignal {
    CpuUtil,
    CpuUsageCores,
    ThrottledRate,
    PeriodsRate,
    MemUtil,
    MemUsageBytes,
    MemCacheBytes,
    MemMappedBytes,
    MemActiveFile,
    MemInactiveFile,
    MemInactiveAnon,
    KernelStack,
    PgFaultRate,
    NetInBytes,
    NetOutBytes,
    TcpConns,
    DiskReadBytes,
    DiskWriteBytes,
    DiskQueue,
    NProcs,
    NThreads,
}

impl ContainerSignal {
    /// Reads the referenced field.
    pub fn value(self, s: &ContainerSignals) -> f64 {
        match self {
            ContainerSignal::CpuUtil => s.cpu_util,
            ContainerSignal::CpuUsageCores => s.cpu_usage_cores,
            ContainerSignal::ThrottledRate => s.throttled_rate,
            ContainerSignal::PeriodsRate => s.periods_rate,
            ContainerSignal::MemUtil => s.mem_util,
            ContainerSignal::MemUsageBytes => s.mem_usage_bytes,
            ContainerSignal::MemCacheBytes => s.mem_cache_bytes,
            ContainerSignal::MemMappedBytes => s.mem_mapped_bytes,
            ContainerSignal::MemActiveFile => s.mem_active_file,
            ContainerSignal::MemInactiveFile => s.mem_inactive_file,
            ContainerSignal::MemInactiveAnon => s.mem_inactive_anon,
            ContainerSignal::KernelStack => s.kernel_stack,
            ContainerSignal::PgFaultRate => s.pgfault_rate,
            ContainerSignal::NetInBytes => s.net_in_bytes,
            ContainerSignal::NetOutBytes => s.net_out_bytes,
            ContainerSignal::TcpConns => s.tcp_conns,
            ContainerSignal::DiskReadBytes => s.disk_read_bytes,
            ContainerSignal::DiskWriteBytes => s.disk_write_bytes,
            ContainerSignal::DiskQueue => s.disk_queue,
            ContainerSignal::NProcs => s.nprocs,
            ContainerSignal::NThreads => s.nthreads,
        }
    }
}

/// Where a catalog metric gets its value from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalSource {
    /// A host signal scaled by `weight`.
    Host(HostSignal),
    /// A container signal scaled by `weight`.
    Container(ContainerSignal),
    /// A fixed hardware-inventory constant.
    Constant(f64),
}

monitorless_std::json_struct!(HostSignals {
    cpu_util,
    cpu_user,
    cpu_sys,
    cpu_iowait,
    ctx_switch_rate,
    intr_rate,
    syscall_rate,
    nprocs,
    runnable,
    load1,
    mem_util,
    mem_used_bytes,
    mem_cached_bytes,
    mem_dirty_bytes,
    pgin_rate,
    pgout_rate,
    pgfault_rate,
    swap_rate,
    net_in_bytes,
    net_out_bytes,
    net_in_pkts,
    net_out_pkts,
    net_err_rate,
    net_util,
    tcp_estab,
    tcp_inuse,
    tcp_retrans,
    disk_read_bytes,
    disk_write_bytes,
    disk_iops,
    disk_aveq,
    disk_util,
    inodes_free,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_signal_reads_right_field() {
        let s = HostSignals {
            cpu_util: 0.7,
            tcp_estab: 42.0,
            ..HostSignals::default()
        };
        assert_eq!(HostSignal::CpuUtil.value(&s), 0.7);
        assert_eq!(HostSignal::TcpEstab.value(&s), 42.0);
        assert_eq!(HostSignal::DiskAveq.value(&s), 0.0);
    }

    #[test]
    fn container_signal_reads_right_field() {
        let s = ContainerSignals {
            cpu_util: 0.95,
            mem_mapped_bytes: 1024.0,
            ..ContainerSignals::default()
        };
        assert_eq!(ContainerSignal::CpuUtil.value(&s), 0.95);
        assert_eq!(ContainerSignal::MemMappedBytes.value(&s), 1024.0);
    }

    #[test]
    fn signals_are_serializable() {
        let s = HostSignals::default();
        let back: HostSignals =
            monitorless_std::json::from_str(&monitorless_std::json::to_string(&s)).unwrap();
        assert_eq!(back, s);
    }
}
