//! Sample types exchanged between agents and the orchestrator.

/// Identifier of a cloud node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of one service instance (container).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instance{}", self.0)
    }
}

/// One second of processed monitoring data from one node: the host
/// metric vector plus one container vector per running instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Node the observation came from.
    pub node: NodeId,
    /// Timestamp in seconds since experiment start.
    pub time: u64,
    /// Processed host metrics (rates already derived).
    pub host: Vec<f64>,
    /// Processed container metrics per instance.
    pub containers: Vec<(InstanceId, Vec<f64>)>,
}

impl Observation {
    /// The concatenated per-instance vector `M_{I,t}` = host ++ container
    /// for the given instance, or `None` if the instance is not present.
    ///
    /// Multiple containers on the same node share the host part but have
    /// different container parts (paper Section 2.3).
    pub fn instance_vector(&self, instance: InstanceId) -> Option<Vec<f64>> {
        self.containers
            .iter()
            .find(|(id, _)| *id == instance)
            .map(|(_, ctr)| {
                let mut v = self.host.clone();
                v.extend_from_slice(ctr);
                v
            })
    }

    /// [`Observation::instance_vector`] into a caller-provided buffer
    /// (cleared and refilled), avoiding the per-call allocation on the
    /// orchestrator's tick path. Returns `false` — leaving `buf` empty —
    /// when the instance is not part of this observation.
    pub fn instance_vector_into(&self, instance: InstanceId, buf: &mut Vec<f64>) -> bool {
        buf.clear();
        let Some((_, ctr)) = self.containers.iter().find(|(id, _)| *id == instance) else {
            return false;
        };
        buf.extend_from_slice(&self.host);
        buf.extend_from_slice(ctr);
        true
    }

    /// [`Observation::instance_vector`] written straight into a
    /// caller-provided slice — the zero-copy dataset-assembly path,
    /// where `out` is the row's final resting place inside the
    /// training matrix and no intermediate `Vec` ever exists. Returns
    /// `false` — leaving `out` untouched — when the instance is not
    /// part of this observation.
    ///
    /// # Panics
    ///
    /// Panics if the instance is present and `out.len()` differs from
    /// the host + container vector width.
    pub fn instance_vector_write(&self, instance: InstanceId, out: &mut [f64]) -> bool {
        let Some((_, ctr)) = self.containers.iter().find(|(id, _)| *id == instance) else {
            return false;
        };
        let (host_part, ctr_part) = out.split_at_mut(self.host.len());
        host_part.copy_from_slice(&self.host);
        ctr_part.copy_from_slice(ctr);
        true
    }

    /// All instances present in this observation.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.containers.iter().map(|(id, _)| *id)
    }

    /// Number of container entries (instances) in this observation.
    pub fn n_instances(&self) -> usize {
        self.containers.len()
    }

    /// Concatenated vector of the `i`-th container entry, by position —
    /// the fleet gather path: iterating positions sidesteps the
    /// per-instance id search of [`Observation::instance_vector_into`],
    /// which is O(containers) per lookup and quadratic over a tick.
    /// Writes host ++ container into `buf` (cleared first) and returns
    /// the entry's [`InstanceId`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_instances()`.
    pub fn instance_vector_at(&self, i: usize, buf: &mut Vec<f64>) -> InstanceId {
        let (id, ctr) = &self.containers[i];
        buf.clear();
        buf.extend_from_slice(&self.host);
        buf.extend_from_slice(ctr);
        *id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_vector_concatenates() {
        let obs = Observation {
            node: NodeId(0),
            time: 3,
            host: vec![1.0, 2.0],
            containers: vec![(InstanceId(7), vec![3.0]), (InstanceId(8), vec![4.0])],
        };
        assert_eq!(obs.instance_vector(InstanceId(7)).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(obs.instance_vector(InstanceId(8)).unwrap(), vec![1.0, 2.0, 4.0]);
        assert!(obs.instance_vector(InstanceId(9)).is_none());
        assert_eq!(obs.instances().count(), 2);
        // Buffer-reuse variant matches, including stale-content reset.
        let mut buf = vec![99.0; 7];
        assert!(obs.instance_vector_into(InstanceId(8), &mut buf));
        assert_eq!(buf, vec![1.0, 2.0, 4.0]);
        assert!(!obs.instance_vector_into(InstanceId(9), &mut buf));
        assert!(buf.is_empty());
        // Slice-write variant matches and leaves misses untouched.
        let mut row = [0.0; 3];
        assert!(obs.instance_vector_write(InstanceId(7), &mut row));
        assert_eq!(row, [1.0, 2.0, 3.0]);
        assert!(!obs.instance_vector_write(InstanceId(9), &mut row));
        assert_eq!(row, [1.0, 2.0, 3.0]);
        // Positional gather matches the id lookup entry for entry.
        assert_eq!(obs.n_instances(), 2);
        for i in 0..obs.n_instances() {
            let id = obs.instance_vector_at(i, &mut buf);
            assert_eq!(Some(buf.clone()), obs.instance_vector(id));
        }
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(InstanceId(5).to_string(), "instance5");
    }
}
