//! The per-node monitoring agent.
//!
//! One agent runs on every cloud node (paper Figure 1). Each second it
//! receives the node's signal frames from the simulator, expands them to
//! the full catalog, emits raw (cumulative-counter) values, and converts
//! them back to processed per-second vectors — the exact data the
//! orchestrator trains and predicts on.

use std::collections::HashMap;
use std::sync::Arc;

use monitorless_std::sync::Mutex;

use crate::catalog::Catalog;
use crate::kind::MetricKind;
use crate::rates::{CounterAccumulator, RateConverter};
use crate::sample::{InstanceId, NodeId, Observation};
use crate::signals::{ContainerSignals, HostSignals};

/// Monitoring agent for one node.
///
/// The agent is `Send + Sync`; per-instance rate state is behind a mutex
/// so a collection thread per node can feed a shared orchestrator.
#[derive(Debug)]
pub struct MonitoringAgent {
    node: NodeId,
    catalog: Arc<Catalog>,
    seed: u64,
    ctr_kinds: Vec<MetricKind>,
    state: Mutex<AgentState>,
}

#[derive(Debug)]
struct AgentState {
    host_acc: CounterAccumulator,
    host_rates: RateConverter,
    containers: HashMap<InstanceId, (CounterAccumulator, RateConverter)>,
    /// Reused expansion/raw-sample buffers for the fused collect path.
    scratch_inst: Vec<f64>,
    scratch_raw: Vec<f64>,
}

impl MonitoringAgent {
    /// Creates an agent for `node` using the given catalog and noise seed.
    pub fn new(node: NodeId, catalog: Arc<Catalog>, seed: u64) -> Self {
        let host_kinds: Vec<_> = catalog.host_metrics().iter().map(|m| m.kind).collect();
        let ctr_kinds: Vec<_> = catalog.container_metrics().iter().map(|m| m.kind).collect();
        MonitoringAgent {
            node,
            seed,
            ctr_kinds,
            state: Mutex::new(AgentState {
                host_acc: CounterAccumulator::new(host_kinds.clone()),
                host_rates: RateConverter::new(host_kinds),
                containers: HashMap::new(),
                scratch_inst: Vec::new(),
                scratch_raw: Vec::new(),
            }),
            catalog,
        }
    }

    /// The node this agent monitors.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The catalog this agent expands against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Collects one second of data: expands signals, accumulates counters
    /// and derives rates, producing the processed [`Observation`].
    ///
    /// Instances that disappear (scale-in) have their rate state dropped;
    /// new instances start with a zero-rate first interval, exactly like a
    /// freshly started container.
    pub fn collect(
        &self,
        time: u64,
        host: &HostSignals,
        containers: &[(InstanceId, ContainerSignals)],
    ) -> Observation {
        let mut out = Observation {
            node: self.node,
            time,
            host: Vec::new(),
            containers: Vec::new(),
        };
        self.collect_into(time, host, containers, &mut out);
        out
    }

    /// Fused variant of [`MonitoringAgent::collect`] that writes the
    /// processed observation into `out`, reusing its buffers.
    ///
    /// Bitwise-identical output and identical internal rate-state
    /// evolution, but allocation-free in steady state (a stable set of
    /// container ids): the expansion scratch, the retained raw samples
    /// and the output vectors are all reused in place. The event-driven
    /// simulator calls this once per node per monitoring sample.
    pub fn collect_into(
        &self,
        time: u64,
        host: &HostSignals,
        containers: &[(InstanceId, ContainerSignals)],
        out: &mut Observation,
    ) {
        let _span = monitorless_obs::Span::enter("agent.collect");
        monitorless_obs::counter_add("agent.collections", 1);
        let mut state = self.state.lock();
        let AgentState {
            host_acc,
            host_rates,
            containers: rate_state,
            scratch_inst,
            scratch_raw,
        } = &mut *state;

        out.node = self.node;
        out.time = time;
        self.catalog
            .expand_host_into(host, time, self.seed, scratch_inst);
        host_acc.accumulate_into(scratch_inst, scratch_raw);
        host_rates.convert_into(scratch_raw, 1.0, &mut out.host);

        // Drop state for instances that no longer exist.
        rate_state.retain(|id, _| containers.iter().any(|(live, _)| live == id));

        out.containers.truncate(containers.len());
        while out.containers.len() < containers.len() {
            out.containers.push((InstanceId(0), Vec::new()));
        }
        for (slot, (id, signals)) in out.containers.iter_mut().zip(containers) {
            slot.0 = *id;
            self.catalog.expand_container_into(
                signals,
                time,
                self.seed ^ (id.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                scratch_inst,
            );
            let (acc, conv) = rate_state.entry(*id).or_insert_with(|| {
                (
                    CounterAccumulator::new(self.ctr_kinds.clone()),
                    RateConverter::new(self.ctr_kinds.clone()),
                )
            });
            acc.accumulate_into(scratch_inst, scratch_raw);
            conv.convert_into(scratch_raw, 1.0, &mut slot.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> MonitoringAgent {
        MonitoringAgent::new(NodeId(0), Arc::new(Catalog::standard()), 7)
    }

    #[test]
    fn collect_produces_full_vectors() {
        let a = agent();
        let obs =
            a.collect(0, &HostSignals::default(), &[(InstanceId(1), ContainerSignals::default())]);
        assert_eq!(obs.host.len(), 952);
        assert_eq!(obs.containers[0].1.len(), 88);
        assert_eq!(obs.instance_vector(InstanceId(1)).unwrap().len(), 1040);
    }

    #[test]
    fn counter_rates_recover_after_warmup() {
        let a = agent();
        let cat = Catalog::standard();
        let pswitch = cat.host_index("kernel.all.pswitch").unwrap();
        let hs = HostSignals {
            ctx_switch_rate: 1000.0,
            ..HostSignals::default()
        };
        let first = a.collect(0, &hs, &[]);
        assert_eq!(first.host[pswitch], 0.0, "first counter interval dropped");
        let second = a.collect(1, &hs, &[]);
        assert!((second.host[pswitch] - 1000.0).abs() < 150.0, "rate = {}", second.host[pswitch]);
    }

    #[test]
    fn departed_instances_reset_rate_state() {
        let a = agent();
        let cs = ContainerSignals {
            pgfault_rate: 100.0,
            ..ContainerSignals::default()
        };
        let cat = Catalog::standard();
        let pgfault = cat.container_index("cgroup.memory.stat.pgfault").unwrap();
        a.collect(0, &HostSignals::default(), &[(InstanceId(1), cs)]);
        a.collect(1, &HostSignals::default(), &[(InstanceId(1), cs)]);
        // Instance disappears, then reappears: first interval is dropped
        // again rather than producing a huge negative/positive spike.
        a.collect(2, &HostSignals::default(), &[]);
        let back = a.collect(3, &HostSignals::default(), &[(InstanceId(1), cs)]);
        assert_eq!(back.containers[0].1[pgfault], 0.0);
    }

    #[test]
    fn collect_into_reused_buffers_match_fresh_collect() {
        let fresh = agent();
        let reused = agent();
        let mut buf = Observation {
            node: NodeId(9),
            time: 99,
            host: Vec::new(),
            containers: Vec::new(),
        };
        let cs = |v: f64| ContainerSignals {
            tcp_conns: v,
            pgfault_rate: v * 2.0,
            ..ContainerSignals::default()
        };
        // Instance set churns: grow, shrink, regrow — the reused buffers
        // must track it and stay bitwise-identical to fresh collects.
        let frames: [&[(InstanceId, ContainerSignals)]; 5] = [
            &[(InstanceId(1), cs(10.0))],
            &[(InstanceId(1), cs(11.0)), (InstanceId(2), cs(20.0))],
            &[(InstanceId(2), cs(21.0))],
            &[],
            &[(InstanceId(1), cs(12.0)), (InstanceId(3), cs(30.0))],
        ];
        for (t, frame) in frames.iter().enumerate() {
            let hs = HostSignals {
                ctx_switch_rate: 100.0 * t as f64,
                ..HostSignals::default()
            };
            let want = fresh.collect(t as u64, &hs, frame);
            reused.collect_into(t as u64, &hs, frame, &mut buf);
            assert_eq!(buf.node, want.node);
            assert_eq!(buf.time, want.time);
            assert_eq!(buf.host, want.host, "tick {t}: host vector");
            assert_eq!(buf.containers, want.containers, "tick {t}: containers");
        }
    }

    #[test]
    fn agent_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MonitoringAgent>();
    }

    #[test]
    fn different_containers_get_different_noise() {
        let a = agent();
        let cs = ContainerSignals {
            tcp_conns: 50.0,
            ..ContainerSignals::default()
        };
        let obs =
            a.collect(0, &HostSignals::default(), &[(InstanceId(1), cs), (InstanceId(2), cs)]);
        let cat = Catalog::standard();
        let conns = cat.container_index("containers.net.tcp.conns").unwrap();
        let v1 = obs.containers[0].1[conns];
        let v2 = obs.containers[1].1[conns];
        assert_ne!(v1, v2);
        assert!((v1 - 50.0).abs() < 5.0 && (v2 - 50.0).abs() < 5.0);
    }
}
