//! The standard 1040-metric catalog (952 host + 88 container).
//!
//! Metric names follow the PCP namespace (`kernel.all.pswitch`,
//! `network.tcp.currestab`, `disk.all.aveq`, `cgroup.cpusched.throttled`,
//! …). Every metric is defined as an affine function of one underlying
//! [`signal`](crate::signals) plus deterministic measurement noise:
//! `value = offset + weight * signal * (1 + noise * ε(metric, t))` — this
//! mirrors how most real PCP metrics are per-device or per-protocol
//! refinements of a handful of physical quantities.

use crate::kind::{MetricKind, Scope};
use crate::signals::{ContainerSignal, ContainerSignals, HostSignal, HostSignals, SignalSource};

/// One metric definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDef {
    /// PCP-style dotted name.
    pub name: String,
    /// Preprocessing class.
    pub kind: MetricKind,
    /// Host- or container-scoped.
    pub scope: Scope,
    /// Underlying signal.
    pub source: SignalSource,
    /// Multiplier applied to the signal.
    pub weight: f64,
    /// Constant offset added after scaling.
    pub offset: f64,
    /// Relative measurement-noise amplitude.
    pub noise: f64,
}

impl MetricDef {
    /// Evaluates the metric for the given signal frames.
    ///
    /// `t` and `seed` drive the reproducible measurement noise. Exactly one
    /// of `host`/`container` is consulted depending on the source.
    pub fn evaluate(
        &self,
        host: &HostSignals,
        container: &ContainerSignals,
        t: u64,
        seed: u64,
        idx: usize,
    ) -> f64 {
        let base = match self.source {
            SignalSource::Host(s) => s.value(host),
            SignalSource::Container(s) => s.value(container),
            SignalSource::Constant(c) => return c,
        };
        let eps = pseudo_noise(idx as u64, t, seed);
        let v = self.offset + self.weight * base * (1.0 + self.noise * eps);
        v.max(0.0)
    }
}

/// Deterministic pseudo-noise in `[-1, 1]` from (metric, time, seed).
pub fn pseudo_noise(idx: u64, t: u64, seed: u64) -> f64 {
    let mut z = seed
        .wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(t.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// The full metric catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    host: Vec<MetricDef>,
    container: Vec<MetricDef>,
}

/// Number of host-scoped metrics in the standard catalog (as in the paper).
pub const STANDARD_HOST_METRICS: usize = 952;
/// Number of container-scoped metrics in the standard catalog.
pub const STANDARD_CONTAINER_METRICS: usize = 88;

impl Catalog {
    /// Builds the standard catalog: exactly 952 host and 88 container
    /// metrics, matching the paper's PCP configuration.
    pub fn standard() -> Self {
        let mut b = Builder::default();
        b.build_host();
        b.build_container();
        let c = Catalog {
            host: b.host,
            container: b.container,
        };
        debug_assert_eq!(c.host.len(), STANDARD_HOST_METRICS);
        debug_assert_eq!(c.container.len(), STANDARD_CONTAINER_METRICS);
        c
    }

    /// Number of host metrics.
    pub fn host_len(&self) -> usize {
        self.host.len()
    }

    /// Number of container metrics.
    pub fn container_len(&self) -> usize {
        self.container.len()
    }

    /// Total number of metrics.
    pub fn len(&self) -> usize {
        self.host.len() + self.container.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Host metric definitions.
    pub fn host_metrics(&self) -> &[MetricDef] {
        &self.host
    }

    /// Container metric definitions.
    pub fn container_metrics(&self) -> &[MetricDef] {
        &self.container
    }

    /// All names in concatenation order (host metrics then container
    /// metrics) — the layout of `M_{I,t}`.
    pub fn concat_names(&self) -> Vec<String> {
        self.host
            .iter()
            .map(|m| m.name.clone())
            .chain(self.container.iter().map(|m| format!("ctr.{}", m.name)))
            .collect()
    }

    /// Metric kinds in the same concatenation order as
    /// [`Catalog::concat_names`].
    pub fn concat_kinds(&self) -> Vec<MetricKind> {
        self.host
            .iter()
            .map(|m| m.kind)
            .chain(self.container.iter().map(|m| m.kind))
            .collect()
    }

    /// Index of a host metric by name.
    pub fn host_index(&self, name: &str) -> Option<usize> {
        self.host.iter().position(|m| m.name == name)
    }

    /// Index of a container metric by name (container-local index).
    pub fn container_index(&self, name: &str) -> Option<usize> {
        self.container.iter().position(|m| m.name == name)
    }

    /// Index of a container metric within the concatenated vector.
    pub fn concat_container_index(&self, name: &str) -> Option<usize> {
        self.container_index(name).map(|i| self.host.len() + i)
    }

    /// Evaluates all host metrics for one signal frame.
    pub fn expand_host(&self, signals: &HostSignals, t: u64, seed: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.host.len());
        self.expand_host_into(signals, t, seed, &mut out);
        out
    }

    /// Evaluates all host metrics into `out`, reusing its capacity.
    ///
    /// Bitwise-identical to [`Catalog::expand_host`] but allocation-free
    /// once `out` has grown to the host width.
    pub fn expand_host_into(&self, signals: &HostSignals, t: u64, seed: u64, out: &mut Vec<f64>) {
        let dummy = ContainerSignals::default();
        out.clear();
        out.extend(
            self.host
                .iter()
                .enumerate()
                .map(|(i, m)| m.evaluate(signals, &dummy, t, seed, i)),
        );
    }

    /// Evaluates all container metrics for one signal frame.
    pub fn expand_container(&self, signals: &ContainerSignals, t: u64, seed: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.container.len());
        self.expand_container_into(signals, t, seed, &mut out);
        out
    }

    /// Evaluates all container metrics into `out`, reusing its capacity.
    ///
    /// Bitwise-identical to [`Catalog::expand_container`] but
    /// allocation-free once `out` has grown to the container width.
    pub fn expand_container_into(
        &self,
        signals: &ContainerSignals,
        t: u64,
        seed: u64,
        out: &mut Vec<f64>,
    ) {
        let dummy = HostSignals::default();
        out.clear();
        out.extend(
            self.container
                .iter()
                .enumerate()
                .map(|(i, m)| m.evaluate(&dummy, signals, t, seed, i + self.host.len())),
        );
    }
}

#[derive(Default)]
struct Builder {
    host: Vec<MetricDef>,
    container: Vec<MetricDef>,
}

impl Builder {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        scope: Scope,
        name: String,
        kind: MetricKind,
        source: SignalSource,
        weight: f64,
        offset: f64,
        noise: f64,
    ) {
        let def = MetricDef {
            name,
            kind,
            scope,
            source,
            weight,
            offset,
            noise,
        };
        match scope {
            Scope::Host => self.host.push(def),
            Scope::Container => self.container.push(def),
        }
    }

    fn host(
        &mut self,
        name: &str,
        kind: MetricKind,
        signal: HostSignal,
        weight: f64,
        offset: f64,
        noise: f64,
    ) {
        self.push(
            Scope::Host,
            name.to_string(),
            kind,
            SignalSource::Host(signal),
            weight,
            offset,
            noise,
        );
    }

    fn host_const(&mut self, name: &str, value: f64) {
        self.push(
            Scope::Host,
            name.to_string(),
            MetricKind::Constant,
            SignalSource::Constant(value),
            0.0,
            0.0,
            0.0,
        );
    }

    fn ctr(
        &mut self,
        name: &str,
        kind: MetricKind,
        signal: ContainerSignal,
        weight: f64,
        offset: f64,
        noise: f64,
    ) {
        self.push(
            Scope::Container,
            name.to_string(),
            kind,
            SignalSource::Container(signal),
            weight,
            offset,
            noise,
        );
    }

    fn build_host(&mut self) {
        use HostSignal as H;
        use MetricKind as K;

        // --- hinv.* hardware inventory (8) ---
        self.host_const("hinv.ncpu", 48.0);
        self.host_const("hinv.ndisk", 4.0);
        self.host_const("hinv.ninterface", 4.0);
        self.host_const("hinv.physmem", 128.0 * 1024.0);
        self.host_const("hinv.pagesize", 4096.0);
        self.host_const("hinv.nnode", 2.0);
        self.host_const("hinv.cpu.clock", 2500.0);
        self.host_const("hinv.ncpus_online", 48.0);

        // --- kernel.all.* (20) ---
        self.host("kernel.all.load.1", K::Gauge, H::Load1, 1.0, 0.0, 0.03);
        self.host("kernel.all.load.5", K::Gauge, H::Load1, 0.9, 0.0, 0.02);
        self.host("kernel.all.load.15", K::Gauge, H::Load1, 0.8, 0.0, 0.01);
        self.host("kernel.all.nprocs", K::Gauge, H::NProcs, 1.0, 0.0, 0.01);
        self.host("kernel.all.runnable", K::Gauge, H::Runnable, 1.0, 0.0, 0.05);
        self.host("kernel.all.blocked", K::Gauge, H::DiskAveq, 0.5, 0.0, 0.1);
        self.host("kernel.all.pswitch", K::Counter, H::CtxSwitchRate, 1.0, 0.0, 0.05);
        self.host("kernel.all.intr", K::Counter, H::IntrRate, 1.0, 0.0, 0.05);
        self.host("kernel.all.syscall", K::Counter, H::SyscallRate, 1.0, 0.0, 0.05);
        self.host("kernel.all.sysfork", K::Counter, H::SyscallRate, 0.002, 0.0, 0.2);
        self.host("kernel.all.sysexec", K::Counter, H::SyscallRate, 0.001, 0.0, 0.2);
        self.host("kernel.all.cpu.user", K::Utilization, H::CpuUser, 100.0, 0.0, 0.02);
        self.host("kernel.all.cpu.sys", K::Utilization, H::CpuSys, 100.0, 0.0, 0.02);
        self.host("kernel.all.cpu.idle", K::Utilization, H::CpuUtil, -100.0, 100.0, 0.02);
        self.host("kernel.all.cpu.wait.total", K::Utilization, H::CpuIowait, 100.0, 0.0, 0.05);
        self.host("kernel.all.cpu.irq.hard", K::Utilization, H::IntrRate, 0.0001, 0.0, 0.1);
        self.host("kernel.all.cpu.irq.soft", K::Utilization, H::IntrRate, 0.0002, 0.0, 0.1);
        self.host("kernel.all.cpu.steal", K::Utilization, H::CpuUtil, 0.0, 0.0, 0.0);
        self.host("kernel.all.cpu.nice", K::Utilization, H::CpuUser, 0.5, 0.0, 0.1);
        self.host_const("kernel.all.uptime", 86_400.0);

        // --- kernel.percpu.* : 48 CPUs x 10 metrics (480) ---
        for cpu in 0..48 {
            // Deterministic per-CPU imbalance around the host aggregate.
            let share = 1.0 + 0.3 * ((cpu as f64) * 0.7).sin();
            for (metric, signal, weight) in [
                ("user", H::CpuUser, 100.0 * share),
                ("sys", H::CpuSys, 100.0 * share),
                ("idle", H::CpuUtil, -100.0 * share),
                ("wait", H::CpuIowait, 100.0 * share),
                ("intr", H::IntrRate, share / 48.0),
                ("nice", H::CpuUser, 0.3 * share),
                ("irq.hard", H::IntrRate, 0.0001 * share),
                ("irq.soft", H::IntrRate, 0.0002 * share),
                ("steal", H::CpuUtil, 0.0),
                ("guest", H::CpuUtil, 0.0),
            ] {
                let offset = if metric == "idle" { 100.0 } else { 0.0 };
                let kind = if metric == "intr" {
                    K::Counter
                } else {
                    K::Utilization
                };
                self.host(
                    &format!("kernel.percpu.cpu.{metric}.cpu{cpu}"),
                    kind,
                    signal,
                    weight,
                    offset,
                    0.08,
                );
            }
        }

        // --- mem.* (11) ---
        self.host("mem.util.used", K::Utilization, H::MemUtil, 100.0, 0.0, 0.01);
        self.host_const("mem.physmem", 128.0 * 1024.0 * 1024.0);
        self.host("mem.freemem", K::Bytes, H::MemUsedBytes, -1.0, 137_438_953_472.0, 0.01);
        self.host("mem.used", K::Bytes, H::MemUsedBytes, 1.0, 0.0, 0.01);
        self.host("mem.cached", K::Bytes, H::MemCachedBytes, 1.0, 0.0, 0.01);
        self.host("mem.bufmem", K::Bytes, H::MemCachedBytes, 0.2, 0.0, 0.02);
        self.host("mem.dirty", K::Bytes, H::MemDirtyBytes, 1.0, 0.0, 0.1);
        self.host("mem.active", K::Bytes, H::MemUsedBytes, 0.6, 0.0, 0.02);
        self.host("mem.inactive", K::Bytes, H::MemUsedBytes, 0.4, 0.0, 0.02);
        self.host("mem.slab", K::Bytes, H::MemUsedBytes, 0.05, 0.0, 0.02);
        self.host("mem.shmem", K::Bytes, H::MemUsedBytes, 0.02, 0.0, 0.02);

        // --- swap.* (4) ---
        self.host("swap.pagesin", K::Counter, H::SwapRate, 0.5, 0.0, 0.2);
        self.host("swap.pagesout", K::Counter, H::SwapRate, 0.5, 0.0, 0.2);
        self.host_const("swap.length", 8.0 * 1024.0 * 1024.0 * 1024.0);
        self.host("swap.used", K::Bytes, H::SwapRate, 4096.0, 0.0, 0.1);

        // --- network.interface.* : 4 interfaces x 14 metrics (56) ---
        for (i, iface) in ["eth0", "eth1", "eth2", "eth3"].iter().enumerate() {
            // eth0 carries most traffic; others are progressively idle.
            let share = [0.7, 0.2, 0.07, 0.03][i];
            self.host(
                &format!("network.interface.in.bytes.{iface}"),
                K::Counter,
                H::NetInBytes,
                share,
                0.0,
                0.05,
            );
            self.host(
                &format!("network.interface.out.bytes.{iface}"),
                K::Counter,
                H::NetOutBytes,
                share,
                0.0,
                0.05,
            );
            self.host(
                &format!("network.interface.in.packets.{iface}"),
                K::Counter,
                H::NetInPkts,
                share,
                0.0,
                0.05,
            );
            self.host(
                &format!("network.interface.out.packets.{iface}"),
                K::Counter,
                H::NetOutPkts,
                share,
                0.0,
                0.05,
            );
            self.host(
                &format!("network.interface.in.errors.{iface}"),
                K::Counter,
                H::NetErrRate,
                share,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.out.errors.{iface}"),
                K::Counter,
                H::NetErrRate,
                share * 0.5,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.in.drops.{iface}"),
                K::Counter,
                H::NetErrRate,
                share * 0.3,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.out.drops.{iface}"),
                K::Counter,
                H::NetErrRate,
                share * 0.2,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.collisions.{iface}"),
                K::Counter,
                H::NetErrRate,
                0.01,
                0.0,
                0.5,
            );
            self.host_const(&format!("network.interface.mtu.{iface}"), 1500.0);
            self.host_const(&format!("network.interface.baudrate.{iface}"), 1.25e9);
            self.host(
                &format!("network.interface.in.mcasts.{iface}"),
                K::Counter,
                H::NetInPkts,
                0.001 * share,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.out.mcasts.{iface}"),
                K::Counter,
                H::NetOutPkts,
                0.001 * share,
                0.0,
                0.3,
            );
            self.host(
                &format!("network.interface.total.bytes.{iface}"),
                K::Counter,
                H::NetInBytes,
                1.8 * share,
                0.0,
                0.05,
            );
        }
        self.host("network.interface.util", K::Utilization, H::NetUtil, 100.0, 0.0, 0.03);

        // --- network.tcp.* (30) ---
        self.host("network.tcp.currestab", K::Gauge, H::TcpEstab, 1.0, 0.0, 0.02);
        self.host("network.tcp.activeopens", K::Counter, H::NetInPkts, 0.01, 0.0, 0.2);
        self.host("network.tcp.passiveopens", K::Counter, H::NetInPkts, 0.02, 0.0, 0.2);
        self.host("network.tcp.attemptfails", K::Counter, H::NetErrRate, 0.2, 0.0, 0.3);
        self.host("network.tcp.estabresets", K::Counter, H::NetErrRate, 0.1, 0.0, 0.3);
        self.host("network.tcp.insegs", K::Counter, H::NetInPkts, 0.95, 0.0, 0.05);
        self.host("network.tcp.outsegs", K::Counter, H::NetOutPkts, 0.95, 0.0, 0.05);
        self.host("network.tcp.retranssegs", K::Counter, H::TcpRetrans, 1.0, 0.0, 0.2);
        self.host("network.tcp.inerrs", K::Counter, H::NetErrRate, 0.5, 0.0, 0.3);
        self.host("network.tcp.outrsts", K::Counter, H::NetErrRate, 0.3, 0.0, 0.3);
        for (name, signal, weight) in [
            ("delayedacks", H::NetInPkts, 0.05),
            ("delayedacklost", H::NetErrRate, 0.05),
            ("listenoverflows", H::NetErrRate, 0.1),
            ("listendrops", H::NetErrRate, 0.1),
            ("prunecalled", H::NetErrRate, 0.02),
            ("rcvpruned", H::NetErrRate, 0.02),
            ("ofopruned", H::NetErrRate, 0.01),
            ("outofwindowicmps", H::NetErrRate, 0.01),
            ("lockdroppedicmps", H::NetErrRate, 0.01),
            ("tw", H::TcpEstab, 0.3),
            ("twrecycled", H::TcpEstab, 0.01),
            ("twkilled", H::TcpEstab, 0.005),
            ("pawspassive", H::NetErrRate, 0.01),
            ("pawsactive", H::NetErrRate, 0.01),
            ("pawsestab", H::NetErrRate, 0.01),
            ("sackrecovery", H::TcpRetrans, 0.2),
            ("sackreorder", H::TcpRetrans, 0.1),
            ("lossundo", H::TcpRetrans, 0.05),
            ("fastretrans", H::TcpRetrans, 0.5),
            ("timeouts", H::TcpRetrans, 0.3),
        ] {
            self.host(&format!("network.tcp.{name}"), K::Counter, signal, weight, 0.0, 0.2);
        }

        // --- network.tcpconn.* (6) ---
        self.host("network.tcpconn.established", K::Gauge, H::TcpEstab, 1.0, 0.0, 0.02);
        self.host("network.tcpconn.time_wait", K::Gauge, H::TcpEstab, 0.3, 0.0, 0.1);
        self.host("network.tcpconn.close_wait", K::Gauge, H::TcpEstab, 0.05, 0.0, 0.2);
        self.host("network.tcpconn.listen", K::Gauge, H::NProcs, 0.1, 0.0, 0.05);
        self.host("network.tcpconn.syn_sent", K::Gauge, H::TcpEstab, 0.02, 0.0, 0.3);
        self.host("network.tcpconn.fin_wait", K::Gauge, H::TcpEstab, 0.04, 0.0, 0.3);

        // --- network.sockstat.* (8) ---
        self.host("network.sockstat.tcp.inuse", K::Gauge, H::TcpInuse, 1.0, 0.0, 0.02);
        self.host("network.sockstat.tcp.orphan", K::Gauge, H::TcpInuse, 0.01, 0.0, 0.3);
        self.host("network.sockstat.tcp.tw", K::Gauge, H::TcpEstab, 0.3, 0.0, 0.1);
        self.host("network.sockstat.tcp.alloc", K::Gauge, H::TcpInuse, 1.1, 0.0, 0.05);
        self.host("network.sockstat.tcp.mem", K::Gauge, H::TcpInuse, 4.0, 0.0, 0.1);
        self.host("network.sockstat.udp.inuse", K::Gauge, H::NProcs, 0.05, 0.0, 0.1);
        self.host("network.sockstat.raw.inuse", K::Gauge, H::NProcs, 0.01, 0.0, 0.1);
        self.host("network.sockstat.frag.inuse", K::Gauge, H::NetErrRate, 0.1, 0.0, 0.3);

        // --- network.udp.* (6) ---
        self.host("network.udp.indatagrams", K::Counter, H::NetInPkts, 0.03, 0.0, 0.2);
        self.host("network.udp.outdatagrams", K::Counter, H::NetOutPkts, 0.03, 0.0, 0.2);
        self.host("network.udp.inerrors", K::Counter, H::NetErrRate, 0.05, 0.0, 0.3);
        self.host("network.udp.noports", K::Counter, H::NetErrRate, 0.02, 0.0, 0.3);
        self.host("network.udp.recvbuferrors", K::Counter, H::NetErrRate, 0.02, 0.0, 0.3);
        self.host("network.udp.sndbuferrors", K::Counter, H::NetErrRate, 0.01, 0.0, 0.3);

        // --- network.icmp.* (4) ---
        self.host("network.icmp.inmsgs", K::Counter, H::NetInPkts, 0.001, 0.0, 0.3);
        self.host("network.icmp.outmsgs", K::Counter, H::NetOutPkts, 0.001, 0.0, 0.3);
        self.host("network.icmp.inerrors", K::Counter, H::NetErrRate, 0.01, 0.0, 0.3);
        self.host("network.icmp.indestunreachs", K::Counter, H::NetErrRate, 0.01, 0.0, 0.3);

        // --- network.ip.* (12) ---
        for (name, signal, weight) in [
            ("inreceives", H::NetInPkts, 1.0),
            ("outrequests", H::NetOutPkts, 1.0),
            ("indelivers", H::NetInPkts, 0.99),
            ("forwdatagrams", H::NetInPkts, 0.001),
            ("indiscards", H::NetErrRate, 0.1),
            ("outdiscards", H::NetErrRate, 0.05),
            ("inhdrerrors", H::NetErrRate, 0.02),
            ("inaddrerrors", H::NetErrRate, 0.02),
            ("innoroutes", H::NetErrRate, 0.01),
            ("fragoks", H::NetOutPkts, 0.001),
            ("fragfails", H::NetErrRate, 0.005),
            ("reasmoks", H::NetInPkts, 0.001),
        ] {
            self.host(&format!("network.ip.{name}"), K::Counter, signal, weight, 0.0, 0.1);
        }

        // --- disk.dev.* : 4 disks x 12 metrics (48) ---
        for (i, dev) in ["sda", "sdb", "sdc", "sdd"].iter().enumerate() {
            let share = [0.55, 0.25, 0.15, 0.05][i];
            self.host(
                &format!("disk.dev.read.{dev}"),
                K::Counter,
                H::DiskIops,
                0.4 * share,
                0.0,
                0.1,
            );
            self.host(
                &format!("disk.dev.write.{dev}"),
                K::Counter,
                H::DiskIops,
                0.6 * share,
                0.0,
                0.1,
            );
            self.host(&format!("disk.dev.total.{dev}"), K::Counter, H::DiskIops, share, 0.0, 0.1);
            self.host(
                &format!("disk.dev.read_bytes.{dev}"),
                K::Counter,
                H::DiskReadBytes,
                share,
                0.0,
                0.1,
            );
            self.host(
                &format!("disk.dev.write_bytes.{dev}"),
                K::Counter,
                H::DiskWriteBytes,
                share,
                0.0,
                0.1,
            );
            self.host(
                &format!("disk.dev.total_bytes.{dev}"),
                K::Counter,
                H::DiskReadBytes,
                1.8 * share,
                0.0,
                0.1,
            );
            self.host(
                &format!("disk.dev.avactive.{dev}"),
                K::Gauge,
                H::DiskUtil,
                1000.0 * share,
                0.0,
                0.1,
            );
            self.host(&format!("disk.dev.aveq.{dev}"), K::Gauge, H::DiskAveq, share, 0.0, 0.1);
            self.host(
                &format!("disk.dev.read_merge.{dev}"),
                K::Counter,
                H::DiskIops,
                0.05 * share,
                0.0,
                0.2,
            );
            self.host(
                &format!("disk.dev.write_merge.{dev}"),
                K::Counter,
                H::DiskIops,
                0.1 * share,
                0.0,
                0.2,
            );
            self.host(
                &format!("disk.dev.read_rawactive.{dev}"),
                K::Gauge,
                H::DiskUtil,
                500.0 * share,
                0.0,
                0.2,
            );
            self.host(
                &format!("disk.dev.write_rawactive.{dev}"),
                K::Gauge,
                H::DiskUtil,
                700.0 * share,
                0.0,
                0.2,
            );
        }

        // --- disk.all.* (12) ---
        self.host("disk.all.read", K::Counter, H::DiskIops, 0.4, 0.0, 0.05);
        self.host("disk.all.write", K::Counter, H::DiskIops, 0.6, 0.0, 0.05);
        self.host("disk.all.total", K::Counter, H::DiskIops, 1.0, 0.0, 0.05);
        self.host("disk.all.read_bytes", K::Counter, H::DiskReadBytes, 1.0, 0.0, 0.05);
        self.host("disk.all.write_bytes", K::Counter, H::DiskWriteBytes, 1.0, 0.0, 0.05);
        self.host("disk.all.total_bytes", K::Counter, H::DiskReadBytes, 1.8, 0.0, 0.05);
        self.host("disk.all.avactive", K::Gauge, H::DiskUtil, 1000.0, 0.0, 0.05);
        self.host("disk.all.aveq", K::Gauge, H::DiskAveq, 1.0, 0.0, 0.05);
        self.host("disk.all.read_merge", K::Counter, H::DiskIops, 0.05, 0.0, 0.1);
        self.host("disk.all.write_merge", K::Counter, H::DiskIops, 0.1, 0.0, 0.1);
        self.host("disk.all.blkread", K::Counter, H::DiskReadBytes, 1.0 / 512.0, 0.0, 0.05);
        self.host("disk.all.blkwrite", K::Counter, H::DiskWriteBytes, 1.0 / 512.0, 0.0, 0.05);

        // --- vfs.* (8) ---
        self.host("vfs.files.count", K::Gauge, H::NProcs, 30.0, 0.0, 0.05);
        self.host("vfs.files.free", K::Gauge, H::NProcs, -30.0, 800_000.0, 0.02);
        self.host_const("vfs.files.max", 800_000.0);
        self.host("vfs.inodes.count", K::Gauge, H::NProcs, 50.0, 100_000.0, 0.02);
        self.host("vfs.inodes.free", K::Gauge, H::InodesFree, 1.0, 0.0, 0.01);
        self.host_const("vfs.inodes.max", 2_000_000.0);
        self.host("vfs.dentry.count", K::Gauge, H::NProcs, 100.0, 50_000.0, 0.05);
        self.host("vfs.dentry.free", K::Gauge, H::NProcs, -50.0, 500_000.0, 0.02);

        // --- filesys.* : 4 filesystems x 6 metrics (24) ---
        for (i, fs) in ["root", "var", "data", "docker"].iter().enumerate() {
            let share = [0.1, 0.2, 0.5, 0.2][i];
            self.host_const(&format!("filesys.capacity.{fs}"), 500.0 * 1024.0 * 1024.0);
            self.host(
                &format!("filesys.used.{fs}"),
                K::Bytes,
                H::MemCachedBytes,
                5.0 * share,
                1e9,
                0.02,
            );
            self.host(
                &format!("filesys.free.{fs}"),
                K::Bytes,
                H::MemCachedBytes,
                -5.0 * share,
                5e11,
                0.02,
            );
            self.host(
                &format!("filesys.avail.{fs}"),
                K::Bytes,
                H::MemCachedBytes,
                -5.0 * share,
                4.8e11,
                0.02,
            );
            self.host(
                &format!("filesys.usedfiles.{fs}"),
                K::Gauge,
                H::NProcs,
                200.0 * share,
                1000.0,
                0.05,
            );
            self.host(
                &format!("filesys.freefiles.{fs}"),
                K::Gauge,
                H::InodesFree,
                share,
                0.0,
                0.02,
            );
        }

        // --- kernel.percpu.interrupts.* : one line per CPU (48) ---
        for cpu in 0..48 {
            let share = 1.0 + 0.2 * ((cpu as f64) * 1.3).cos();
            self.host(
                &format!("kernel.percpu.interrupts.line{cpu}"),
                K::Counter,
                H::IntrRate,
                share / 48.0,
                0.0,
                0.15,
            );
        }

        // --- mem.numa.* : 2 nodes x 16 metrics (32) ---
        for node in 0..2 {
            let share = if node == 0 { 0.55 } else { 0.45 };
            for (name, signal, weight) in [
                ("util.used", H::MemUsedBytes, share),
                ("util.free", H::MemUsedBytes, -share),
                ("util.filePages", H::MemCachedBytes, share),
                ("util.active", H::MemUsedBytes, 0.6 * share),
                ("util.inactive", H::MemUsedBytes, 0.4 * share),
                ("util.dirty", H::MemDirtyBytes, share),
                ("util.mapped", H::MemUsedBytes, 0.1 * share),
                ("util.anonpages", H::MemUsedBytes, 0.5 * share),
                ("util.slab", H::MemUsedBytes, 0.05 * share),
                ("util.kernelStack", H::NProcs, 16_384.0 * share),
                ("alloc.hit", H::PgFaultRate, 100.0 * share),
                ("alloc.miss", H::PgFaultRate, 2.0 * share),
                ("alloc.foreign", H::PgFaultRate, 0.5 * share),
                ("alloc.interleave_hit", H::PgFaultRate, 0.1 * share),
                ("alloc.local_node", H::PgFaultRate, 95.0 * share),
                ("alloc.other_node", H::PgFaultRate, 5.0 * share),
            ] {
                let offset = if name == "util.free" {
                    7e10 * share
                } else {
                    0.0
                };
                let kind = if name.starts_with("alloc") {
                    K::Counter
                } else {
                    K::Bytes
                };
                self.host(
                    &format!("mem.numa.{name}.node{node}"),
                    kind,
                    signal,
                    weight,
                    offset,
                    0.05,
                );
            }
        }

        // --- network.softnet.* : per-CPU packet processing (48) ---
        for cpu in 0..48 {
            let share = 1.0 + 0.25 * ((cpu as f64) * 0.5).sin();
            self.host(
                &format!("network.softnet.processed.cpu{cpu}"),
                K::Counter,
                H::NetInPkts,
                share / 48.0,
                0.0,
                0.12,
            );
        }

        // --- mem.vmstat.* : fill the remainder with real vmstat fields ---
        // The names marked in Table 4 of the paper come first so they are
        // always present.
        let vmstat: &[(&str, HostSignal, f64, MetricKind)] = &[
            ("nr_inactive_anon", H::MemUsedBytes, 0.12 / 4096.0, K::Gauge),
            ("nr_active_anon", H::MemUsedBytes, 0.38 / 4096.0, K::Gauge),
            ("nr_inactive_file", H::MemCachedBytes, 0.45 / 4096.0, K::Gauge),
            ("nr_active_file", H::MemCachedBytes, 0.55 / 4096.0, K::Gauge),
            ("nr_kernel_stack", H::NProcs, 4.0, K::Gauge),
            ("pgpgin", H::PgInRate, 1.0, K::Counter),
            ("pgpgout", H::PgOutRate, 1.0, K::Counter),
            ("pswpin", H::SwapRate, 0.5, K::Counter),
            ("pswpout", H::SwapRate, 0.5, K::Counter),
            ("pgfault", H::PgFaultRate, 1.0, K::Counter),
            ("pgmajfault", H::PgInRate, 0.02, K::Counter),
            ("pgfree", H::PgFaultRate, 1.1, K::Counter),
            ("pgactivate", H::PgFaultRate, 0.2, K::Counter),
            ("pgdeactivate", H::PgOutRate, 0.3, K::Counter),
            ("pgrefill", H::PgOutRate, 0.2, K::Counter),
            ("pgscan_kswapd", H::PgOutRate, 0.8, K::Counter),
            ("pgscan_direct", H::PgOutRate, 0.2, K::Counter),
            ("pgsteal_kswapd", H::PgOutRate, 0.7, K::Counter),
            ("pgsteal_direct", H::PgOutRate, 0.15, K::Counter),
            ("nr_mapped", H::MemUsedBytes, 0.08 / 4096.0, K::Gauge),
            ("nr_dirty", H::MemDirtyBytes, 1.0 / 4096.0, K::Gauge),
            ("nr_writeback", H::MemDirtyBytes, 0.2 / 4096.0, K::Gauge),
            ("nr_shmem", H::MemUsedBytes, 0.02 / 4096.0, K::Gauge),
            ("nr_slab_reclaimable", H::MemUsedBytes, 0.03 / 4096.0, K::Gauge),
            ("nr_slab_unreclaimable", H::MemUsedBytes, 0.02 / 4096.0, K::Gauge),
            ("nr_page_table_pages", H::NProcs, 12.0, K::Gauge),
            ("nr_anon_pages", H::MemUsedBytes, 0.5 / 4096.0, K::Gauge),
            ("nr_file_pages", H::MemCachedBytes, 1.0 / 4096.0, K::Gauge),
            ("nr_free_pages", H::MemUsedBytes, -1.0 / 4096.0, K::Gauge),
            ("nr_unevictable", H::MemUsedBytes, 0.001 / 4096.0, K::Gauge),
            ("nr_mlock", H::MemUsedBytes, 0.001 / 4096.0, K::Gauge),
            ("nr_bounce", H::DiskIops, 0.001, K::Gauge),
            ("nr_vmscan_write", H::PgOutRate, 0.05, K::Counter),
            ("nr_vmscan_immediate_reclaim", H::PgOutRate, 0.02, K::Counter),
            ("nr_writeback_temp", H::MemDirtyBytes, 0.01 / 4096.0, K::Gauge),
            ("nr_isolated_anon", H::PgOutRate, 0.01, K::Gauge),
            ("nr_isolated_file", H::PgOutRate, 0.01, K::Gauge),
            ("nr_dirtied", H::PgOutRate, 0.5, K::Counter),
            ("nr_written", H::PgOutRate, 0.45, K::Counter),
            ("numa_hit", H::PgFaultRate, 0.95, K::Counter),
            ("numa_miss", H::PgFaultRate, 0.02, K::Counter),
            ("numa_foreign", H::PgFaultRate, 0.02, K::Counter),
            ("numa_interleave", H::PgFaultRate, 0.01, K::Counter),
            ("numa_local", H::PgFaultRate, 0.93, K::Counter),
            ("numa_other", H::PgFaultRate, 0.05, K::Counter),
            ("pgalloc_dma", H::PgFaultRate, 0.001, K::Counter),
            ("pgalloc_dma32", H::PgFaultRate, 0.05, K::Counter),
            ("pgalloc_normal", H::PgFaultRate, 1.0, K::Counter),
            ("pgalloc_movable", H::PgFaultRate, 0.0, K::Counter),
            ("allocstall", H::PgOutRate, 0.01, K::Counter),
            ("pageoutrun", H::PgOutRate, 0.02, K::Counter),
            ("kswapd_inodesteal", H::PgOutRate, 0.01, K::Counter),
            ("kswapd_low_wmark_hit_quickly", H::PgOutRate, 0.005, K::Counter),
            ("kswapd_high_wmark_hit_quickly", H::PgOutRate, 0.005, K::Counter),
            ("slabs_scanned", H::PgOutRate, 0.1, K::Counter),
            ("unevictable_pgs_culled", H::PgOutRate, 0.001, K::Counter),
            ("unevictable_pgs_scanned", H::PgOutRate, 0.001, K::Counter),
            ("unevictable_pgs_rescued", H::PgOutRate, 0.001, K::Counter),
            ("thp_fault_alloc", H::PgFaultRate, 0.001, K::Counter),
            ("thp_collapse_alloc", H::PgFaultRate, 0.0005, K::Counter),
            ("thp_split", H::PgFaultRate, 0.0002, K::Counter),
            ("compact_stall", H::PgOutRate, 0.001, K::Counter),
            ("compact_fail", H::PgOutRate, 0.0005, K::Counter),
            ("compact_success", H::PgOutRate, 0.0005, K::Counter),
            ("compact_migrate_scanned", H::PgOutRate, 0.01, K::Counter),
            ("compact_free_scanned", H::PgOutRate, 0.01, K::Counter),
            ("compact_isolated", H::PgOutRate, 0.005, K::Counter),
            ("htlb_buddy_alloc_success", H::PgFaultRate, 0.0001, K::Counter),
            ("htlb_buddy_alloc_fail", H::PgFaultRate, 0.00005, K::Counter),
            ("drop_pagecache", H::PgOutRate, 0.0001, K::Counter),
            ("drop_slab", H::PgOutRate, 0.0001, K::Counter),
            ("balloon_inflate", H::PgOutRate, 0.0, K::Counter),
            ("balloon_deflate", H::PgOutRate, 0.0, K::Counter),
            ("balloon_migrate", H::PgOutRate, 0.0, K::Counter),
            ("swap_ra", H::SwapRate, 0.1, K::Counter),
            ("swap_ra_hit", H::SwapRate, 0.08, K::Counter),
            ("workingset_refault", H::PgInRate, 0.1, K::Counter),
            ("workingset_activate", H::PgInRate, 0.08, K::Counter),
            ("workingset_nodereclaim", H::PgOutRate, 0.01, K::Counter),
            ("pgmigrate_success", H::PgFaultRate, 0.001, K::Counter),
            ("pgmigrate_fail", H::PgFaultRate, 0.0005, K::Counter),
            ("pglazyfree", H::PgOutRate, 0.001, K::Counter),
            ("pglazyfreed", H::PgOutRate, 0.001, K::Counter),
            ("pgrotated", H::PgOutRate, 0.002, K::Counter),
            ("pgcuratestall", H::PgOutRate, 0.0001, K::Counter),
            ("zone_reclaim_failed", H::PgOutRate, 0.0001, K::Counter),
            ("kcompactd_wake", H::PgOutRate, 0.0005, K::Counter),
            ("kcompactd_migrate_scanned", H::PgOutRate, 0.002, K::Counter),
            ("kcompactd_free_scanned", H::PgOutRate, 0.002, K::Counter),
            ("oom_kill", H::MemUtil, 0.001, K::Counter),
            ("numa_pte_updates", H::PgFaultRate, 0.01, K::Counter),
            ("numa_huge_pte_updates", H::PgFaultRate, 0.001, K::Counter),
            ("numa_hint_faults", H::PgFaultRate, 0.005, K::Counter),
            ("numa_hint_faults_local", H::PgFaultRate, 0.004, K::Counter),
            ("numa_pages_migrated", H::PgFaultRate, 0.002, K::Counter),
        ];
        let remaining = STANDARD_HOST_METRICS - self.host.len();
        assert!(
            remaining <= vmstat.len(),
            "vmstat list too short: need {remaining}, have {}",
            vmstat.len()
        );
        for &(name, signal, weight, kind) in vmstat.iter().take(remaining) {
            self.host(&format!("mem.vmstat.{name}"), kind, signal, weight, 0.0, 0.05);
        }
    }

    fn build_container(&mut self) {
        use ContainerSignal as C;
        use MetricKind as K;

        // --- containers.cpu.* / cgroup.cpuacct.* (12) ---
        self.ctr("containers.cpu.util", K::Utilization, C::CpuUtil, 100.0, 0.0, 0.02);
        self.ctr("cgroup.cpuacct.usage", K::Counter, C::CpuUsageCores, 1e9, 0.0, 0.02);
        self.ctr("cgroup.cpuacct.usage_user", K::Counter, C::CpuUsageCores, 0.8e9, 0.0, 0.03);
        self.ctr("cgroup.cpuacct.usage_sys", K::Counter, C::CpuUsageCores, 0.2e9, 0.0, 0.05);
        for vcpu in 0..8 {
            let share = 1.0 + 0.25 * ((vcpu as f64) * 0.9).sin();
            self.ctr(
                &format!("cgroup.cpuacct.usage_percpu.cpu{vcpu}"),
                K::Counter,
                C::CpuUsageCores,
                share * 1e9 / 8.0,
                0.0,
                0.1,
            );
        }

        // --- cgroup.cpusched.* (3) ---
        self.ctr("cgroup.cpusched.periods", K::Counter, C::PeriodsRate, 1.0, 0.0, 0.02);
        self.ctr("cgroup.cpusched.throttled", K::Counter, C::ThrottledRate, 1.0, 0.0, 0.05);
        self.ctr("cgroup.cpusched.throttled_time", K::Counter, C::ThrottledRate, 1e7, 0.0, 0.1);

        // --- containers.mem.* / cgroup.memory.* (20) ---
        self.ctr("containers.mem.util", K::Utilization, C::MemUtil, 100.0, 0.0, 0.02);
        self.ctr("cgroup.memory.usage", K::Bytes, C::MemUsageBytes, 1.0, 0.0, 0.01);
        self.ctr("cgroup.memory.stat.cache", K::Bytes, C::MemCacheBytes, 1.0, 0.0, 0.02);
        self.ctr("cgroup.memory.stat.rss", K::Bytes, C::MemUsageBytes, 0.7, 0.0, 0.02);
        self.ctr("cgroup.memory.stat.rss_huge", K::Bytes, C::MemUsageBytes, 0.1, 0.0, 0.05);
        self.ctr("cgroup.memory.stat.mapped_file", K::Bytes, C::MemMappedBytes, 1.0, 0.0, 0.02);
        self.ctr("cgroup.memory.stat.swap", K::Bytes, C::MemUsageBytes, 0.01, 0.0, 0.2);
        self.ctr("cgroup.memory.stat.working_set", K::Bytes, C::MemUsageBytes, 0.85, 0.0, 0.02);
        self.ctr("cgroup.memory.stat.active_anon", K::Bytes, C::MemUsageBytes, 0.5, 0.0, 0.03);
        self.ctr("cgroup.memory.stat.inactive_anon", K::Bytes, C::MemInactiveAnon, 1.0, 0.0, 0.03);
        self.ctr("cgroup.memory.stat.active_file", K::Bytes, C::MemActiveFile, 1.0, 0.0, 0.03);
        self.ctr("cgroup.memory.stat.inactive_file", K::Bytes, C::MemInactiveFile, 1.0, 0.0, 0.03);
        self.ctr("cgroup.memory.stat.kernel_stack", K::Bytes, C::KernelStack, 1.0, 0.0, 0.05);
        self.ctr("cgroup.memory.stat.pgfault", K::Counter, C::PgFaultRate, 1.0, 0.0, 0.05);
        self.ctr("cgroup.memory.stat.pgmajfault", K::Counter, C::PgFaultRate, 0.01, 0.0, 0.2);
        self.ctr("cgroup.memory.stat.pgpgin", K::Counter, C::PgFaultRate, 0.5, 0.0, 0.1);
        self.ctr("cgroup.memory.stat.pgpgout", K::Counter, C::PgFaultRate, 0.4, 0.0, 0.1);
        self.ctr("cgroup.memory.stat.unevictable", K::Bytes, C::MemUsageBytes, 0.001, 0.0, 0.2);
        self.ctr("cgroup.memory.stat.dirty", K::Bytes, C::DiskWriteBytes, 2.0, 0.0, 0.1);
        self.ctr("cgroup.memory.stat.writeback", K::Bytes, C::DiskWriteBytes, 0.5, 0.0, 0.2);

        // --- cgroup.memory.stat.total_* mirrors (19) ---
        for (name, sig, weight) in [
            ("total_cache", C::MemCacheBytes, 1.0),
            ("total_rss", C::MemUsageBytes, 0.7),
            ("total_rss_huge", C::MemUsageBytes, 0.1),
            ("total_mapped_file", C::MemMappedBytes, 1.0),
            ("total_swap", C::MemUsageBytes, 0.01),
            ("total_active_anon", C::MemUsageBytes, 0.5),
            ("total_inactive_anon", C::MemInactiveAnon, 1.0),
            ("total_active_file", C::MemActiveFile, 1.0),
            ("total_inactive_file", C::MemInactiveFile, 1.0),
            ("total_unevictable", C::MemUsageBytes, 0.001),
            ("total_dirty", C::DiskWriteBytes, 2.0),
            ("total_writeback", C::DiskWriteBytes, 0.5),
            ("total_pgfault", C::PgFaultRate, 1.0),
            ("total_pgmajfault", C::PgFaultRate, 0.01),
            ("total_pgpgin", C::PgFaultRate, 0.5),
            ("total_pgpgout", C::PgFaultRate, 0.4),
            ("shmem", C::MemUsageBytes, 0.01),
            ("slab", C::MemUsageBytes, 0.02),
            ("sock", C::TcpConns, 8192.0),
        ] {
            let kind = if name.contains("pg") {
                K::Counter
            } else {
                K::Bytes
            };
            self.ctr(&format!("cgroup.memory.stat.{name}"), kind, sig, weight, 0.0, 0.05);
        }

        // --- containers.net.* (7) ---
        self.ctr("containers.net.in.bytes", K::Counter, C::NetInBytes, 1.0, 0.0, 0.03);
        self.ctr("containers.net.out.bytes", K::Counter, C::NetOutBytes, 1.0, 0.0, 0.03);
        self.ctr("containers.net.in.packets", K::Counter, C::NetInBytes, 1.0 / 800.0, 0.0, 0.05);
        self.ctr("containers.net.out.packets", K::Counter, C::NetOutBytes, 1.0 / 800.0, 0.0, 0.05);
        self.ctr("containers.net.in.errors", K::Counter, C::NetInBytes, 1e-7, 0.0, 0.5);
        self.ctr("containers.net.out.errors", K::Counter, C::NetOutBytes, 1e-7, 0.0, 0.5);
        self.ctr("containers.net.tcp.conns", K::Gauge, C::TcpConns, 1.0, 0.0, 0.02);

        // --- cgroup.blkio.* aggregate (8) + per-device (16) ---
        for dev in ["all", "sda", "sdb"] {
            let share = match dev {
                "all" => 1.0,
                "sda" => 0.7,
                _ => 0.3,
            };
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_service_bytes.read"),
                K::Counter,
                C::DiskReadBytes,
                share,
                0.0,
                0.05,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_service_bytes.write"),
                K::Counter,
                C::DiskWriteBytes,
                share,
                0.0,
                0.05,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_serviced.read"),
                K::Counter,
                C::DiskReadBytes,
                share / 4096.0,
                0.0,
                0.1,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_serviced.write"),
                K::Counter,
                C::DiskWriteBytes,
                share / 4096.0,
                0.0,
                0.1,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_queued"),
                K::Gauge,
                C::DiskQueue,
                share,
                0.0,
                0.1,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_wait_time"),
                K::Counter,
                C::DiskQueue,
                share * 1e6,
                0.0,
                0.2,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_service_time"),
                K::Counter,
                C::DiskReadBytes,
                share * 10.0,
                0.0,
                0.2,
            );
            self.ctr(
                &format!("cgroup.blkio.{dev}.io_merged"),
                K::Counter,
                C::DiskWriteBytes,
                share / 40_960.0,
                0.0,
                0.3,
            );
        }

        // --- containers.proc.* (3) ---
        self.ctr("containers.proc.nprocs", K::Gauge, C::NProcs, 1.0, 0.0, 0.01);
        self.ctr("containers.proc.nthreads", K::Gauge, C::NThreads, 1.0, 0.0, 0.02);
        self.ctr("containers.proc.fds", K::Gauge, C::TcpConns, 3.0, 8.0, 0.05);

        assert_eq!(
            self.container.len(),
            STANDARD_CONTAINER_METRICS,
            "container catalog size drifted"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_counts_match_paper() {
        let c = Catalog::standard();
        assert_eq!(c.host_len(), 952);
        assert_eq!(c.container_len(), 88);
        assert_eq!(c.len(), 1040);
    }

    #[test]
    fn names_are_unique() {
        let c = Catalog::standard();
        let mut names: Vec<&str> = c
            .host_metrics()
            .iter()
            .chain(c.container_metrics())
            .map(|m| m.name.as_str())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric names");
    }

    #[test]
    fn table4_metrics_exist() {
        let c = Catalog::standard();
        for name in [
            "network.tcp.currestab",
            "hinv.ninterface",
            "kernel.all.pswitch",
            "mem.vmstat.nr_inactive_anon",
            "network.tcpconn.established",
            "network.sockstat.tcp.inuse",
            "kernel.all.nprocs",
            "mem.vmstat.nr_kernel_stack",
            "vfs.inodes.free",
            "mem.vmstat.pgpgin",
            "mem.vmstat.nr_inactive_file",
            "disk.all.aveq",
        ] {
            assert!(c.host_index(name).is_some(), "missing host metric {name}");
        }
        for name in [
            "containers.cpu.util",
            "containers.mem.util",
            "cgroup.cpusched.periods",
            "cgroup.cpusched.throttled",
            "cgroup.memory.stat.mapped_file",
            "cgroup.memory.stat.active_file",
            "cgroup.memory.usage",
        ] {
            assert!(c.container_index(name).is_some(), "missing container metric {name}");
        }
    }

    #[test]
    fn expansion_tracks_signals() {
        let c = Catalog::standard();
        let hs = HostSignals {
            cpu_util: 0.5,
            tcp_estab: 120.0,
            ..HostSignals::default()
        };
        let v = c.expand_host(&hs, 10, 42);
        assert_eq!(v.len(), 952);
        let idle = v[c.host_index("kernel.all.cpu.idle").unwrap()];
        assert!((idle - 50.0).abs() < 5.0, "idle = {idle}");
        let estab = v[c.host_index("network.tcp.currestab").unwrap()];
        assert!((estab - 120.0).abs() < 10.0, "estab = {estab}");
    }

    #[test]
    fn expansion_is_deterministic() {
        let c = Catalog::standard();
        let hs = HostSignals {
            cpu_util: 0.8,
            net_in_bytes: 1e6,
            ..HostSignals::default()
        };
        assert_eq!(c.expand_host(&hs, 5, 7), c.expand_host(&hs, 5, 7));
        assert_ne!(c.expand_host(&hs, 5, 7), c.expand_host(&hs, 6, 7));
    }

    #[test]
    fn container_expansion_tracks_signals() {
        let c = Catalog::standard();
        let cs = ContainerSignals {
            cpu_util: 0.9,
            tcp_conns: 33.0,
            ..ContainerSignals::default()
        };
        let v = c.expand_container(&cs, 3, 1);
        assert_eq!(v.len(), 88);
        let util = v[c.container_index("containers.cpu.util").unwrap()];
        assert!((util - 90.0).abs() < 5.0);
        let conns = v[c.container_index("containers.net.tcp.conns").unwrap()];
        assert!((conns - 33.0).abs() < 3.0);
    }

    #[test]
    fn values_are_nonnegative() {
        let c = Catalog::standard();
        let hs = HostSignals::default();
        assert!(c.expand_host(&hs, 0, 0).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pseudo_noise_bounded_and_deterministic() {
        for idx in 0..50 {
            for t in 0..20 {
                let n = pseudo_noise(idx, t, 9);
                assert!((-1.0..=1.0).contains(&n));
                assert_eq!(n, pseudo_noise(idx, t, 9));
            }
        }
    }

    #[test]
    fn concat_layout_is_host_then_container() {
        let c = Catalog::standard();
        let names = c.concat_names();
        assert_eq!(names.len(), 1040);
        assert!(names[0].starts_with("hinv."));
        assert!(names[952].starts_with("ctr."));
        assert_eq!(
            c.concat_container_index("containers.cpu.util").unwrap(),
            952 + c.container_index("containers.cpu.util").unwrap()
        );
    }
}
