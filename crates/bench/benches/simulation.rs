//! Criterion bench for the cloud simulator: single-service ticks,
//! multi-tenant ticks and scaling operations.

use criterion::{criterion_group, criterion_main, Criterion};
use monitorless_metrics::NodeId;
use monitorless_sim::apps::{build_single, build_sockshop, build_teastore, solr_profile};
use monitorless_sim::{Cluster, ContainerLimits, NodeSpec};

fn bench_single_service_tick(c: &mut Criterion) {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 1);
    let (app, _) = build_single(&mut cluster, solr_profile(), ContainerLimits::cpu(3.0), NodeId(0));
    c.bench_function("tick_single_service", |b| b.iter(|| cluster.step(&[(app, 100.0)])));
}

fn bench_multitenant_tick(c: &mut Criterion) {
    let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()], 2);
    let tea = build_teastore(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
    let sock = build_sockshop(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
    c.bench_function("tick_21_containers_multitenant", |b| {
        b.iter(|| cluster.step(&[(tea, 300.0), (sock, 200.0)]))
    });
}

fn bench_scaling_operations(c: &mut Criterion) {
    c.bench_function("scale_out_and_in", |b| {
        let mut cluster = Cluster::new(vec![NodeSpec::m2()], 3);
        let (app, _) =
            build_single(&mut cluster, solr_profile(), ContainerLimits::cpu(1.0), NodeId(0));
        b.iter(|| {
            let extra = cluster
                .scale_out(app, "solr", NodeId(0))
                .expect("solr exists");
            cluster.step(&[(app, 50.0)]);
            cluster.scale_in(extra)
        })
    });
}

criterion_group!(
    benches,
    bench_single_service_tick,
    bench_multitenant_tick,
    bench_scaling_operations
);
criterion_main!(benches);
