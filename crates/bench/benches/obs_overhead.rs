//! Criterion bench for the telemetry layer's overhead.
//!
//! The acceptance bar for `monitorless-obs` is that instrumenting the
//! hot paths costs nothing when telemetry is off: a disabled
//! counter/span call is a single relaxed atomic load plus a branch
//! (single-digit nanoseconds), while one simulator tick is tens of
//! microseconds of real work across ~10 containers — three to four
//! orders of magnitude apart, so the instrumented tick loop with
//! telemetry disabled must land within 5% of an uninstrumented build
//! (in practice, within noise). The groups below measure:
//!
//! * `disabled_primitives` — the per-call cost of each obs primitive
//!   with telemetry off (the price paid at every instrumented site);
//! * `enabled_primitives` — the same calls with the registry live in
//!   `prom` mode (no per-event I/O), bounding the cost of turning
//!   telemetry on;
//! * `sim_tick` — the real instrumented tick loop with telemetry
//!   disabled and enabled, the end-to-end overhead check.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use monitorless_metrics::NodeId;
use monitorless_obs as obs;
use monitorless_sim::apps::{build_single, solr_profile};
use monitorless_sim::{Cluster, ContainerLimits, NodeSpec};

fn init(format: obs::ExportFormat) {
    obs::init(&obs::TelemetryConfig::with_format(format));
    obs::reset();
}

fn bench_disabled_primitives(c: &mut Criterion) {
    init(obs::ExportFormat::Off);
    let mut g = c.benchmark_group("disabled_primitives");
    g.bench_function("counter_add", |b| b.iter(|| obs::counter_add(black_box("bench.counter"), 1)));
    g.bench_function("gauge_set", |b| b.iter(|| obs::gauge_set(black_box("bench.gauge"), 1.5)));
    g.bench_function("observe", |b| b.iter(|| obs::observe(black_box("bench.hist"), 123.0)));
    g.bench_function("span", |b| b.iter(|| drop(obs::Span::enter(black_box("bench.span")))));
    g.finish();
}

fn bench_enabled_primitives(c: &mut Criterion) {
    init(obs::ExportFormat::Prom);
    let mut g = c.benchmark_group("enabled_primitives");
    g.bench_function("counter_add", |b| b.iter(|| obs::counter_add(black_box("bench.counter"), 1)));
    g.bench_function("gauge_set", |b| b.iter(|| obs::gauge_set(black_box("bench.gauge"), 1.5)));
    g.bench_function("observe", |b| b.iter(|| obs::observe(black_box("bench.hist"), 123.0)));
    g.bench_function("span", |b| b.iter(|| drop(obs::Span::enter(black_box("bench.span")))));
    g.finish();
    init(obs::ExportFormat::Off);
}

fn bench_sim_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tick");

    init(obs::ExportFormat::Off);
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 1);
    let (app, _) = build_single(&mut cluster, solr_profile(), ContainerLimits::cpu(3.0), NodeId(0));
    g.bench_function("telemetry_off", |b| b.iter(|| cluster.step(&[(app, 100.0)])));

    init(obs::ExportFormat::Prom);
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 1);
    let (app, _) = build_single(&mut cluster, solr_profile(), ContainerLimits::cpu(3.0), NodeId(0));
    g.bench_function("telemetry_prom", |b| b.iter(|| cluster.step(&[(app, 100.0)])));

    g.finish();
    init(obs::ExportFormat::Off);
}

criterion_group!(benches, bench_disabled_primitives, bench_enabled_primitives, bench_sim_tick);
criterion_main!(benches);
