//! Criterion bench behind Table 3: training and per-sample prediction
//! cost of the six classifiers on identical features.

use criterion::{criterion_group, criterion_main, Criterion};
use monitorless_learn::prelude::*;
use monitorless_learn::tree::{DecisionTree, DecisionTreeParams};
use monitorless_std::rng::{Rng, StdRng};

fn dataset(n: usize, d: usize) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let informative = if i % 2 == 0 { 0.2 } else { 0.8 };
        let mut row = vec![informative + rng.gen::<f64>() * 0.1];
        for _ in 1..d {
            row.push(rng.gen());
        }
        rows.push(row);
        y.push(u8::from(i % 2 == 1));
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Matrix::from_rows(&refs), y)
}

fn bench_training(c: &mut Criterion) {
    let (x, y) = dataset(400, 30);
    let mut group = c.benchmark_group("train_400x30");
    group.sample_size(10);
    group.bench_function("random_forest_40", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(RandomForestParams {
                n_estimators: 40,
                ..RandomForestParams::default()
            });
            rf.fit(&x, &y, None).unwrap();
            rf
        })
    });
    group.bench_function("xgboost_20", |b| {
        b.iter(|| {
            let mut gb = GradientBoosting::new(GradientBoostingParams {
                n_rounds: 20,
                ..GradientBoostingParams::default()
            });
            gb.fit(&x, &y, None).unwrap();
            gb
        })
    });
    group.bench_function("adaboost_20", |b| {
        b.iter(|| {
            let mut ab = AdaBoost::new(AdaBoostParams {
                n_estimators: 20,
                ..AdaBoostParams::default()
            });
            ab.fit(&x, &y, None).unwrap();
            ab
        })
    });
    group.bench_function("logistic_regression", |b| {
        b.iter(|| {
            let mut lr = LogisticRegression::new(LogisticRegressionParams {
                max_iter: 30,
                ..LogisticRegressionParams::default()
            });
            lr.fit(&x, &y, None).unwrap();
            lr
        })
    });
    group.bench_function("linear_svc", |b| {
        b.iter(|| {
            let mut svc = LinearSvc::new(LinearSvcParams {
                max_iter: 30,
                ..LinearSvcParams::default()
            });
            svc.fit(&x, &y, None).unwrap();
            svc
        })
    });
    group.bench_function("neural_net_20_epochs", |b| {
        b.iter(|| {
            let mut nn = NeuralNet::new(NeuralNetParams {
                epochs: 20,
                ..NeuralNetParams::default()
            });
            nn.fit(&x, &y, None).unwrap();
            nn
        })
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (x, y) = dataset(400, 30);
    let mut rf = RandomForest::new(RandomForestParams {
        n_estimators: 40,
        ..RandomForestParams::default()
    });
    rf.fit(&x, &y, None).unwrap();
    let mut gb = GradientBoosting::new(GradientBoostingParams::default());
    gb.fit(&x, &y, None).unwrap();
    let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
    lr.fit(&x, &y, None).unwrap();

    let mut group = c.benchmark_group("predict_400_samples");
    group.bench_function("random_forest", |b| b.iter(|| rf.predict_proba(&x)));
    group.bench_function("xgboost", |b| b.iter(|| gb.predict_proba(&x)));
    group.bench_function("logistic_regression", |b| b.iter(|| lr.predict_proba(&x)));
    group.finish();
}

/// Single-tree fit cost across dataset sizes: the presorted
/// column-oriented builder (the default behind every `fit`) against the
/// legacy per-node re-sorting builder it replaced. Both produce
/// bit-identical trees; `results/BENCH_table3.json` holds the committed
/// forest-scale snapshot of the same comparison.
fn bench_tree_fit_sizes(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 50_000] {
        let (x, y) = dataset(n, 30);
        let params = DecisionTreeParams {
            min_samples_split: 5,
            min_samples_leaf: 20,
            ..DecisionTreeParams::default()
        };
        let mut group = c.benchmark_group(format!("tree_fit_{n}x30"));
        group.sample_size(10);
        group.bench_function("presorted", |b| {
            b.iter(|| {
                let mut t = DecisionTree::new(params.clone());
                t.fit(&x, &y, None).unwrap();
                t
            })
        });
        group.bench_function("legacy_resort", |b| {
            b.iter(|| {
                let mut t = DecisionTree::new(params.clone());
                t.fit_resorting(&x, &y, None).unwrap();
                t
            })
        });
    }
}

criterion_group!(benches, bench_training, bench_prediction, bench_tree_fit_sizes);
criterion_main!(benches);
