//! Criterion bench for the feature pipeline: base expansion, online
//! transformation and batch transformation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use monitorless::features::{
    BaseExpander, FeaturePipeline, InstanceTransformer, PipelineConfig, RawLayout,
};
use monitorless_learn::Matrix;
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::signals::{ContainerSignals, HostSignals};

fn raw_series(n: usize) -> (Vec<Vec<f64>>, Vec<u8>, Vec<u32>) {
    let catalog = Catalog::standard();
    let mut rows = Vec::new();
    let mut y = Vec::new();
    let mut groups = Vec::new();
    for g in 0..2u32 {
        for t in 0..n {
            let util = t as f64 / n as f64;
            let hs = HostSignals {
                cpu_util: util,
                net_in_bytes: 1e6 * util,
                tcp_estab: 100.0 * util,
                ..HostSignals::default()
            };
            let cs = ContainerSignals {
                cpu_util: util,
                mem_util: 0.5,
                ..ContainerSignals::default()
            };
            let mut v = catalog.expand_host(&hs, t as u64, u64::from(g));
            v.extend(catalog.expand_container(&cs, t as u64, u64::from(g) ^ 1));
            rows.push(v);
            y.push(u8::from(util > 0.8));
            groups.push(g);
        }
    }
    (rows, y, groups)
}

fn bench_base_expansion(c: &mut Criterion) {
    let layout = RawLayout::from_catalog(&Catalog::standard()).unwrap();
    let expander = BaseExpander::new(layout);
    let (rows, _, _) = raw_series(10);
    c.bench_function("base_expand_one_1040_vector", |b| {
        b.iter(|| expander.expand(std::hint::black_box(&rows[5])))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let (rows, y, groups) = raw_series(60);
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&refs);
    let layout = RawLayout::from_catalog(&Catalog::standard()).unwrap();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("fit_transform_120x1040_quick", |b| {
        b.iter(|| {
            FeaturePipeline::new(PipelineConfig::quick())
                .fit_transform(&x, &y, &groups, layout.clone())
                .unwrap()
        })
    });

    let (fitted, _) = FeaturePipeline::new(PipelineConfig::quick())
        .fit_transform(&x, &y, &groups, layout)
        .unwrap();
    group.bench_function("transform_batch_120", |b| {
        b.iter(|| fitted.transform_batch(&x, &groups).unwrap())
    });
    group.bench_function("transform_batch_120_legacy", |b| {
        b.iter(|| fitted.transform_batch_legacy(&x, &groups).unwrap())
    });

    let fitted = Arc::new(fitted);
    group.bench_function("online_push_one_sample", |b| {
        let mut online = InstanceTransformer::new(Arc::clone(&fitted));
        let mut i = 0;
        b.iter(|| {
            let out = online.push(&rows[i % rows.len()]).unwrap();
            i += 1;
            std::hint::black_box(out.last().copied())
        })
    });
    group.bench_function("online_push_one_sample_legacy", |b| {
        let mut online = InstanceTransformer::new(Arc::clone(&fitted));
        let mut i = 0;
        b.iter(|| {
            let out = online.push_legacy(&rows[i % rows.len()]).unwrap();
            i += 1;
            std::hint::black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_base_expansion, bench_pipeline);
criterion_main!(benches);
