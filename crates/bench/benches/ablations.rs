//! Criterion bench for the pipeline ablations (DESIGN.md Section 5):
//! cost of the pipeline with and without the multiplicative products,
//! time-dependent features and with PCA instead of forest filtering.
//! The corresponding *quality* ablation is the `ablation_quality`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monitorless::features::{FeaturePipeline, PipelineConfig, RawLayout, Reduction};
use monitorless_learn::Matrix;
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::signals::{ContainerSignals, HostSignals};

fn raw(n: usize) -> (Matrix, Vec<u8>, Vec<u32>) {
    let catalog = Catalog::standard();
    let mut rows = Vec::new();
    let mut y = Vec::new();
    let mut groups = Vec::new();
    for g in 0..2u32 {
        for t in 0..n {
            let util = t as f64 / n as f64;
            let hs = HostSignals {
                cpu_util: util,
                tcp_estab: 50.0 + 50.0 * util,
                ..HostSignals::default()
            };
            let cs = ContainerSignals {
                cpu_util: util,
                ..ContainerSignals::default()
            };
            let mut v = catalog.expand_host(&hs, t as u64, u64::from(g));
            v.extend(catalog.expand_container(&cs, t as u64, 7 ^ u64::from(g)));
            rows.push(v);
            y.push(u8::from(util > 0.8));
            groups.push(g);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Matrix::from_rows(&refs), y, groups)
}

fn bench_pipeline_variants(c: &mut Criterion) {
    let (x, y, groups) = raw(50);
    let layout = RawLayout::from_catalog(&Catalog::standard()).unwrap();
    let variants: [(&str, PipelineConfig); 4] = [
        ("full", PipelineConfig::quick()),
        (
            "no_products",
            PipelineConfig {
                products: false,
                ..PipelineConfig::quick()
            },
        ),
        (
            "no_time",
            PipelineConfig {
                time_features: false,
                ..PipelineConfig::quick()
            },
        ),
        (
            "pca",
            PipelineConfig {
                reduce1: Reduction::Pca {
                    variance: 0.999,
                    max_components: 20,
                },
                reduce2: Reduction::Pca {
                    variance: 0.999,
                    max_components: 20,
                },
                ..PipelineConfig::quick()
            },
        ),
    ];
    let mut group = c.benchmark_group("pipeline_ablation_fit");
    group.sample_size(10);
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                FeaturePipeline::new(*cfg)
                    .fit_transform(&x, &y, &groups, layout.clone())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_variants);
criterion_main!(benches);
