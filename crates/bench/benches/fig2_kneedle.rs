//! Criterion bench for the Figure 2 machinery: Savitzky-Golay smoothing
//! and Kneedle knee detection, plus the end-to-end harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use monitorless::experiments::fig2::{run, Fig2Options};
use monitorless_label::kneedle::{detect_knee, KneedleParams};
use monitorless_label::SavitzkyGolay;

fn saturating_series(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 700.0 * (1.0 - (-v / 120.0).exp()) + 10.0 * ((v * 0.7).sin()))
        .collect();
    (x, y)
}

fn bench_savgol(c: &mut Criterion) {
    let (_, y) = saturating_series(1000);
    let sg = SavitzkyGolay::new(11, 2).unwrap();
    c.bench_function("savgol_smooth_1000", |b| {
        b.iter(|| sg.smooth(std::hint::black_box(&y)).unwrap())
    });
}

fn bench_kneedle(c: &mut Criterion) {
    let (x, y) = saturating_series(1000);
    c.bench_function("kneedle_detect_1000", |b| {
        b.iter(|| detect_knee(std::hint::black_box(&x), &y, &KneedleParams::default()).unwrap())
    });
}

fn bench_fig2_end_to_end(c: &mut Criterion) {
    let opts = Fig2Options {
        ramp_seconds: 120,
        peak_rps: 1000.0,
        seed: 1,
    };
    c.bench_function("fig2_simulate_and_detect_120s", |b| {
        b.iter_batched(|| opts, |o| run(&o).unwrap(), BatchSize::SmallInput)
    });
}

criterion_group!(benches, bench_savgol, bench_kneedle, bench_fig2_end_to_end);
criterion_main!(benches);
