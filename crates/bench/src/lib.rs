//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every `tableN_*` / `figN_*` binary accepts:
//!
//! * `--full` — run at paper scale (long runs, full grids, 250-tree
//!   forests) instead of the laptop-scale defaults;
//! * `--seed <n>` — override the base seed (default 7);
//! * `--telemetry <off|jsonl|prom>` — enable self-telemetry (also via
//!   the `MONITORLESS_OBS` env var; the flag wins). `jsonl` streams
//!   span/progress events to stderr as the run proceeds; both formats
//!   end with a counter/histogram snapshot on stderr and a copy under
//!   `target/telemetry-<binary>.txt`.
//!
//! Binaries that need a trained model reuse a cached one from
//! `target/monitorless-model-<scale>-<seed>.json` when present, so the
//! full table series can be regenerated without retraining each time.

use std::sync::Arc;

use monitorless::experiments::scenario::EvalOptions;
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingData, TrainingOptions};
use monitorless_obs as obs;

/// Parsed command-line scale options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Paper scale (`--full`) vs laptop scale.
    pub full: bool,
    /// Base seed.
    pub seed: u64,
}

impl Scale {
    /// Parses `--full` and `--seed <n>` from `std::env::args`, and
    /// installs the process-wide telemetry configuration from the
    /// `MONITORLESS_OBS` env var and/or the `--telemetry <fmt>` flag.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        obs::init(&obs::TelemetryConfig::from_env_and_args(args.iter().map(String::as_str)));
        let full = args.iter().any(|a| a == "--full");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        Scale { full, seed }
    }

    /// Training options for this scale.
    pub fn training_options(&self) -> TrainingOptions {
        if self.full {
            TrainingOptions::paper(self.seed)
        } else {
            TrainingOptions::quick(self.seed)
        }
    }

    /// Model options for this scale.
    pub fn model_options(&self) -> ModelOptions {
        if self.full {
            ModelOptions::paper()
        } else {
            ModelOptions::quick()
        }
    }

    /// Evaluation-scenario options for this scale.
    pub fn eval_options(&self, seed_offset: u64) -> EvalOptions {
        EvalOptions {
            duration: if self.full { 7000 } else { 500 },
            ramp_seconds: if self.full { 800 } else { 250 },
            seed: self.seed ^ seed_offset,
            record_raw: false,
        }
    }

    fn cache_path(&self) -> std::path::PathBuf {
        let scale = if self.full { "full" } else { "quick" };
        std::path::PathBuf::from(format!("target/monitorless-model-{scale}-{}.json", self.seed))
    }
}

/// Generates training data at the selected scale, with progress output.
pub fn training_data(scale: &Scale) -> TrainingData {
    obs::progress(&format!(
        "generating training data ({} s per configuration)...",
        scale.training_options().run_seconds
    ));
    generate_training_data(&scale.training_options()).expect("training-data generation")
}

/// Trains (or loads a cached) monitorless model at the selected scale.
pub fn trained_model(scale: &Scale) -> Arc<MonitorlessModel> {
    let path = scale.cache_path();
    if let Ok(model) = MonitorlessModel::load(&path) {
        obs::progress(&format!("loaded cached model from {}", path.display()));
        return Arc::new(model);
    }
    let data = training_data(scale);
    obs::progress(&format!("training monitorless model on {} samples...", data.dataset.len()));
    let model = MonitorlessModel::train(&data, &scale.model_options()).expect("model training");
    if model.save(&path).is_ok() {
        obs::progress(&format!("cached model at {}", path.display()));
    }
    Arc::new(model)
}

/// Writes the experiment's telemetry summary: the final counter/histogram
/// snapshot goes to stderr and to `target/telemetry-<name>.txt` next to
/// the cached models. No-op when telemetry is disabled.
pub fn telemetry_report(name: &str) {
    if !obs::enabled() {
        return;
    }
    obs::report_to_stderr();
    let path = std::path::PathBuf::from(format!("target/telemetry-{name}.txt"));
    match obs::write_report(&path) {
        Ok(()) => obs::progress(&format!("telemetry snapshot written to {}", path.display())),
        Err(e) => obs::progress(&format!("telemetry snapshot not written: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        let s = Scale {
            full: false,
            seed: 7,
        };
        assert_eq!(s.training_options().run_seconds, 150);
        assert_eq!(s.eval_options(0).duration, 500);
    }

    #[test]
    fn full_scale_is_paper_sized() {
        let s = Scale {
            full: true,
            seed: 7,
        };
        assert!(s.training_options().run_seconds >= 2000);
        assert_eq!(s.model_options().forest.n_estimators, 250);
    }

    #[test]
    fn telemetry_report_is_noop_when_disabled() {
        // Must not create files or panic with telemetry off (default).
        if !obs::enabled() {
            telemetry_report("bench-test-noop");
            assert!(!std::path::Path::new("target/telemetry-bench-test-noop.txt").exists());
        }
    }
}
