//! Fleet-simulation perf snapshot: the event-driven incremental path
//! (`EventSim` over `Cluster::step`) vs the retained dense per-second
//! loop (`Cluster::step_dense_legacy`).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table_sim --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_sim.json`
//! (override with `--out <path>`). The default quick scale sweeps
//! fleets of 100 and 1k nodes (10 containers per node); `--full` adds
//! the 10k-node / 100k-container fleet.
//!
//! Fleets are paper-shaped: independent groups of 20 nodes, each
//! hosting two 10-service applications with 10 instances per service
//! spread round-robin over the group — so the shard structure the
//! event path exploits actually exists. Half the applications are
//! driven by synthesized cluster traces (sparse change points), half by
//! stepped profiles, both with long constant stretches so the
//! fixed-point container cache has something to cache — and abrupt
//! steps so it keeps getting invalidated.
//!
//! Measurements interleave the two paths tick by tick (best-of-3
//! reps) against twin clusters built from the same seed, so a noise
//! burst on a shared core hits both sides alike. On **every** measured
//! tick the event path's full `TickReport` — all 952 + 88·c metrics
//! per node, KPIs and container ticks — is asserted bit-identical to
//! the dense loop's, and a counting global allocator asserts the
//! steady-state event tick (`n_jobs` 1) performs **zero** heap
//! allocations (skipped when `--telemetry` is on, which allocates by
//! design). A 4-worker column is reported for information; it
//! allocates on pool spawn and is not part of the 0-alloc contract.
//!
//! `--check <path>` re-measures at the current scale and exits
//! non-zero if the event path lost its edge: ms-per-tick more than 2x
//! the committed snapshot for the same fleet, a same-run speedup over
//! the dense loop below 3x at fleets >= 1k nodes, or a committed
//! 10k-node row below the 5x-speedup / faster-than-real-time floor.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitorless_bench::telemetry_report;
use monitorless_metrics::NodeId;
use monitorless_obs as obs;
use monitorless_sim::{
    AppId, Cluster, ContainerLimits, EventSim, NodeSpec, ServiceProfile, ServiceRole, TickReport,
};
use monitorless_workload::{LoadProfile, SteppedProfile, TraceProfile};

/// System allocator wrapper counting allocation events, so the bench
/// can prove the steady-state event tick never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One fleet size's interleaved measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    nodes: usize,
    containers: usize,
    measured_ticks: usize,
    dense_ms_per_tick: f64,
    event_ms_per_tick: f64,
    event_par_ms_per_tick: f64,
    /// Simulated seconds per wall-clock second at 1 Hz monitoring.
    dense_sim_per_wall: f64,
    event_sim_per_wall: f64,
    speedup: f64,
    event_us_per_container_second: f64,
    evals_per_tick: f64,
    cached_per_tick: f64,
    event_allocs_per_tick: f64,
}

monitorless_std::json_struct!(SizeResult {
    nodes,
    containers,
    measured_ticks,
    dense_ms_per_tick,
    event_ms_per_tick,
    event_par_ms_per_tick,
    dense_sim_per_wall,
    event_sim_per_wall,
    speedup,
    event_us_per_container_second,
    evals_per_tick,
    cached_per_tick,
    event_allocs_per_tick,
});

/// The whole snapshot, as committed to `results/BENCH_sim.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    monitor_hz: f64,
    par_jobs: usize,
    sizes: Vec<SizeResult>,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    monitor_hz,
    par_jobs,
    sizes,
});

/// Nodes per independent placement group: two applications share each
/// group, no application spans groups.
const GROUP: usize = 20;
const APPS_PER_GROUP: usize = 2;
const SERVICES_PER_APP: usize = 10;
const INSTANCES_PER_SERVICE: usize = 10;

/// Builds the paper-shaped fleet: `n_nodes` nodes in groups of
/// [`GROUP`], each group hosting [`APPS_PER_GROUP`] applications whose
/// service instances spread round-robin over the group's nodes —
/// 10 containers per node.
fn build_fleet(n_nodes: usize, seed: u64) -> (Cluster, Vec<AppId>) {
    let specs: Vec<NodeSpec> = (0..n_nodes)
        .map(|i| match i % 3 {
            0 => NodeSpec::m2(),
            1 => NodeSpec::m3(),
            _ => NodeSpec::training_server(),
        })
        .collect();
    let mut cluster = Cluster::new(specs, seed);
    let mut apps = Vec::new();
    let groups = n_nodes.div_ceil(GROUP);
    for g in 0..groups {
        let base = g * GROUP;
        let width = GROUP.min(n_nodes - base);
        for a in 0..APPS_PER_GROUP {
            let app = cluster.add_app(&format!("g{g}a{a}"));
            let mut rr = a; // offset placement per app
            for s in 0..SERVICES_PER_APP {
                let first = NodeId((base + rr % width) as u32);
                rr += 1;
                let inst = cluster.add_service(
                    app,
                    ServiceRole {
                        name: format!("svc{s}"),
                        profile: ServiceProfile::test_cpu_bound(&format!("svc{s}"), 4.0),
                        fanout: 1.0,
                        limits: ContainerLimits::cpu(2.0),
                    },
                    first,
                );
                let _ = inst;
                for _ in 1..INSTANCES_PER_SERVICE {
                    let node = NodeId((base + rr % width) as u32);
                    rr += 1;
                    cluster
                        .scale_out(app, &format!("svc{s}"), node)
                        .expect("known service");
                }
            }
            apps.push(app);
        }
    }
    (cluster, apps)
}

/// Per-app workloads: alternating synthesized cluster traces (sparse
/// change points, trace-driven arrivals) and stepped profiles. Both
/// hold each level long enough for the fixed-point cache to engage.
fn workloads(apps: &[AppId], seed: u64) -> Vec<Box<dyn LoadProfile>> {
    apps.iter()
        .enumerate()
        .map(|(i, _)| -> Box<dyn LoadProfile> {
            if i % 2 == 0 {
                Box::new(TraceProfile::synthesize(seed ^ i as u64, 200_000, 600, 50.0, 400.0))
            } else {
                Box::new(SteppedProfile::new(
                    vec![80.0, 260.0, 140.0, 320.0],
                    400 + (i as u64 % 7) * 60,
                ))
            }
        })
        .collect()
}

/// Asserts two tick reports are bit-identical in every float.
fn assert_reports_identical(fast: &TickReport, dense: &TickReport, n: usize, tick: usize) {
    assert_eq!(fast.time, dense.time, "fleet {n} tick {tick}");
    assert_eq!(fast.observations.len(), dense.observations.len());
    for (f, d) in fast.observations.iter().zip(&dense.observations) {
        assert_eq!(f.node, d.node);
        for (i, (a, b)) in f.host.iter().zip(&d.host).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "fleet {n} tick {tick} node {} host[{i}]: {a} vs {b}",
                f.node
            );
        }
        assert_eq!(f.containers.len(), d.containers.len());
        for ((fi, fv), (di, dv)) in f.containers.iter().zip(&d.containers) {
            assert_eq!(fi, di);
            for (i, (a, b)) in fv.iter().zip(dv).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "fleet {n} tick {tick} inst {fi} metric[{i}]: {a} vs {b}"
                );
            }
        }
    }
    assert_eq!(fast.kpis.len(), dense.kpis.len());
    for ((fa, fk), (da, dk)) in fast.kpis.iter().zip(&dense.kpis) {
        assert_eq!(fa, da);
        assert_eq!(fk.throughput_rps.to_bits(), dk.throughput_rps.to_bits());
        assert_eq!(fk.response_ms.to_bits(), dk.response_ms.to_bits());
    }
    assert_eq!(fast.containers.len(), dense.containers.len());
    for ((fi, ft), (di, dt)) in fast.containers.iter().zip(&dense.containers) {
        assert_eq!(fi, di);
        assert_eq!(ft, dt, "fleet {n} tick {tick} instance {fi}");
    }
}

fn measure_size(n_nodes: usize, seed: u64, par_jobs: usize, telemetry_on: bool) -> SizeResult {
    obs::progress(&format!("fleet of {n_nodes} nodes..."));
    let (event_cluster, apps) = build_fleet(n_nodes, seed);
    let (mut dense, _) = build_fleet(n_nodes, seed);
    let (par_cluster, _) = build_fleet(n_nodes, seed);
    let containers = event_cluster.container_count();
    let profiles = workloads(&apps, seed);

    let mut event = EventSim::new(event_cluster);
    for (app, p) in apps.iter().zip(workloads(&apps, seed)) {
        event.add_workload(*app, p);
    }
    let mut event_par = EventSim::new(par_cluster);
    event_par.set_n_jobs(par_jobs);
    for (app, p) in apps.iter().zip(workloads(&apps, seed)) {
        event_par.add_workload(*app, p);
    }

    let ticks = (20_000 / n_nodes).clamp(3, 60);
    let warmup = ticks.min(5);
    let mut t = 0u64;
    let loads_at = |t: u64| -> Vec<(AppId, f64)> {
        apps.iter()
            .zip(&profiles)
            .map(|(a, p)| (*a, p.intensity(t)))
            .collect()
    };
    for _ in 0..warmup {
        let loads = loads_at(t);
        let got = event.step();
        let want = dense.step_dense_legacy(&loads);
        assert_reports_identical(got, &want, n_nodes, t as usize);
        event_par.step();
        t += 1;
    }

    // Interleave the paths tick by tick, best-of-3 reps: a noise burst
    // hits both sides alike and cancels out of the ratio. Every
    // measured tick cross-checks full bit-identity.
    let reps = 3;
    let mut event_s = f64::INFINITY;
    let mut event_par_s = f64::INFINITY;
    let mut dense_s = f64::INFINITY;
    let mut event_allocs = 0u64;
    event.cluster_mut().reset_stats();
    let stats0 = event.cluster_stats();
    for _ in 0..reps {
        let mut te = 0.0;
        let mut tp = 0.0;
        let mut td = 0.0;
        for _ in 0..ticks {
            let loads = loads_at(t);
            let a0 = ALLOC_EVENTS.load(Ordering::Relaxed);
            let t0 = Instant::now();
            let got = event.step();
            te += t0.elapsed().as_secs_f64();
            event_allocs += ALLOC_EVENTS.load(Ordering::Relaxed) - a0;
            let t1 = Instant::now();
            let want = dense.step_dense_legacy(&loads);
            td += t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            event_par.step();
            tp += t2.elapsed().as_secs_f64();
            assert_reports_identical(got, &want, n_nodes, t as usize);
            t += 1;
        }
        event_s = event_s.min(te);
        event_par_s = event_par_s.min(tp);
        dense_s = dense_s.min(td);
    }
    let measured = reps * ticks;
    let allocs_per_tick = event_allocs as f64 / measured as f64;
    if !telemetry_on {
        assert!(
            event_allocs == 0,
            "event tick allocated ({allocs_per_tick} events/tick over {measured} ticks); the \
             steady-state simulation tick must be allocation-free at n_jobs 1"
        );
    }
    let stats = event.cluster_stats();
    let evals = stats.container_evals - stats0.container_evals;
    let cached = stats.cached_ticks - stats0.cached_ticks;
    let total_tick_slots = (reps * ticks * containers) as u64;
    assert_eq!(
        evals + cached,
        total_tick_slots,
        "every container-second is evaluated or cache-hit"
    );

    let r = SizeResult {
        nodes: n_nodes,
        containers,
        measured_ticks: measured,
        dense_ms_per_tick: dense_s / ticks as f64 * 1e3,
        event_ms_per_tick: event_s / ticks as f64 * 1e3,
        event_par_ms_per_tick: event_par_s / ticks as f64 * 1e3,
        dense_sim_per_wall: ticks as f64 / dense_s,
        event_sim_per_wall: ticks as f64 / event_s,
        speedup: dense_s / event_s,
        event_us_per_container_second: event_s * 1e6 / (ticks * containers) as f64,
        evals_per_tick: evals as f64 / measured as f64,
        cached_per_tick: cached as f64 / measured as f64,
        event_allocs_per_tick: allocs_per_tick,
    };
    obs::progress(&format!(
        "  dense {:.2} ms/tick ({:.1}x real time), event {:.2} ms/tick ({:.1}x real time, \
         {:.2}x dense, {:.0}% cached, 0 allocs)",
        r.dense_ms_per_tick,
        r.dense_sim_per_wall,
        r.event_ms_per_tick,
        r.event_sim_per_wall,
        r.speedup,
        100.0 * r.cached_per_tick / (r.evals_per_tick + r.cached_per_tick).max(1.0)
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        if let Some(baseline) = committed.sizes.iter().find(|s| s.nodes == current.nodes) {
            if current.event_ms_per_tick > 2.0 * baseline.event_ms_per_tick {
                return Err(format!(
                    "event tick at {} nodes took {:.2} ms, more than 2x the committed {:.2} ms",
                    current.nodes, current.event_ms_per_tick, baseline.event_ms_per_tick
                ));
            }
        }
        if current.nodes >= 1_000 && current.speedup < 3.0 {
            return Err(format!(
                "event path is only {:.2}x faster than the dense loop at {} nodes (need >= 3x)",
                current.speedup, current.nodes
            ));
        }
    }
    // The committed snapshot must carry the 10k-node headline row and
    // it must clear the paper-scale floor: >= 5x over dense and
    // faster than real time.
    let headline = committed
        .sizes
        .iter()
        .find(|s| s.nodes == 10_000)
        .ok_or("committed snapshot is missing the 10k-node row (regenerate with --full)")?;
    if headline.speedup < 5.0 {
        return Err(format!("committed 10k-node speedup is {:.2}x (< 5x floor)", headline.speedup));
    }
    if headline.event_sim_per_wall <= 1.0 {
        return Err(format!(
            "committed 10k-node event path is not faster than real time \
             ({:.2} sim-seconds per wall-second)",
            headline.event_sim_per_wall
        ));
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let telemetry_on = args.iter().any(|a| a == "--telemetry");
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_sim.json".into());

    let sizes: &[usize] = if scale.full {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000]
    };
    let par_jobs = 4;
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        monitor_hz: 1.0,
        par_jobs,
        sizes: sizes
            .iter()
            .map(|&n| measure_size(n, scale.seed, par_jobs, telemetry_on))
            .collect(),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table_sim");
}
