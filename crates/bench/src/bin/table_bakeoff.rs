//! Autoscaler bake-off: every scaling backend × every hostile
//! scenario, head to head on the event-driven simulator.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table_bakeoff --release [-- --full]
//! ```
//!
//! Rows are backend × scenario cells from
//! `monitorless::autoscale::bakeoff::run_cell`: SLO-violation seconds,
//! over-provisioned instance-seconds, scaling lag (p50/p99 of
//! request-to-capacity episodes), cold-start count and oscillation
//! flips. The default quick scale runs the short scenario pack;
//! `--full` runs the hour-long variants with the paper-scale model.
//!
//! Unlike the timing benches this matrix is *behavioral*: a cell is a
//! pure function of `(seed, scale)`, so the committed
//! `results/BENCH_bakeoff.json` (quick scale — exactly what CI
//! replays) is reproducible, not a measurement with noise.
//!
//! `--check <path>` re-runs the matrix at the current scale and fails
//! when (a) the Monitorless backend no longer beats the reactive
//! threshold on at least two scenarios — fewer SLO-violation seconds
//! at equal-or-lower over-provisioned instance-seconds — in either the
//! fresh run or the committed snapshot, or (b) same-scale cells
//! drifted grossly from the committed baseline (beyond small
//! cross-platform float slack).

use std::sync::Arc;

use monitorless::autoscale::backend::{
    MonitorlessScaler, PredictiveTrend, ReactiveThreshold, ScalingBackend,
};
use monitorless::autoscale::bakeoff::{run_cell, BakeoffOptions, CellOutcome};
use monitorless::model::MonitorlessModel;
use monitorless_bench::{telemetry_report, trained_model, Scale};
use monitorless_obs as obs;
use monitorless_workload::scenario::Scenario;

/// The whole snapshot, as committed to `results/BENCH_bakeoff.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    slo_ms: f64,
    capacity_rps: f64,
    cells: Vec<CellOutcome>,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    slo_ms,
    capacity_rps,
    cells,
});

/// Fresh backend instances, in report order.
fn backends(model: &Arc<MonitorlessModel>) -> Vec<Box<dyn ScalingBackend>> {
    vec![
        Box::new(ReactiveThreshold::hpa_cpu()),
        Box::new(PredictiveTrend::with_horizon(30)),
        Box::new(MonitorlessScaler::with_threshold(model.threshold())),
    ]
}

fn run_matrix(scale: &Scale, model: &Arc<MonitorlessModel>) -> BenchReport {
    let opts = BakeoffOptions::standard(scale.seed);
    let scenarios = Scenario::pack(scale.seed, !scale.full);
    let mut cells = Vec::new();
    for scenario in &scenarios {
        for mut backend in backends(model) {
            let cell =
                run_cell(backend.as_mut(), scenario, model, &opts).expect("bake-off cell runs");
            obs::progress(&format!(
                "{:<20} {:<18} slo {:>5} s  over {:>8.0} inst-s  lag p99 {:>4.0} s  \
                 flips {:>3}  cold {:>3}",
                cell.scenario,
                cell.backend,
                cell.slo_violation_s,
                cell.overprovision_inst_s,
                cell.lag_p99_s,
                cell.flips,
                cell.cold_starts,
            ));
            cells.push(cell);
        }
    }
    BenchReport {
        scale: if scale.full { "full" } else { "quick" }.to_string(),
        seed: scale.seed,
        slo_ms: opts.slo_ms,
        capacity_rps: opts.capacity_rps(),
        cells,
    }
}

fn cell<'r>(report: &'r BenchReport, backend: &str, scenario: &str) -> Option<&'r CellOutcome> {
    report
        .cells
        .iter()
        .find(|c| c.backend == backend && c.scenario == scenario)
}

/// Scenarios where `monitorless` strictly beats `reactive_threshold`
/// on SLO-violation seconds at equal-or-lower over-provisioning.
fn monitorless_wins(report: &BenchReport) -> Vec<String> {
    let mut wins = Vec::new();
    let mut scenarios: Vec<&str> = report.cells.iter().map(|c| c.scenario.as_str()).collect();
    scenarios.dedup();
    for scenario in scenarios {
        let (Some(mono), Some(reactive)) =
            (cell(report, "monitorless", scenario), cell(report, "reactive_threshold", scenario))
        else {
            continue;
        };
        if mono.slo_violation_s < reactive.slo_violation_s
            && mono.overprovision_inst_s <= reactive.overprovision_inst_s
        {
            wins.push(scenario.to_string());
        }
    }
    wins
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;

    // The headline claim must hold in the committed snapshot AND keep
    // reproducing in the fresh run.
    for (who, rep) in [("committed snapshot", &committed), ("fresh run", report)] {
        let wins = monitorless_wins(rep);
        if wins.len() < 2 {
            return Err(format!(
                "{who}: monitorless beats reactive_threshold (fewer SLO-violation seconds at \
                 equal-or-lower over-provisioning) on only {} scenario(s) {:?}; need >= 2",
                wins.len(),
                wins
            ));
        }
    }

    // Same-scale cells are pure functions of the seed: allow only
    // small cross-platform float slack, fail on gross drift.
    if committed.scale == report.scale && committed.seed == report.seed {
        for fresh in &report.cells {
            let Some(base) = cell(&committed, &fresh.backend, &fresh.scenario) else {
                return Err(format!(
                    "committed snapshot is missing cell {} x {}",
                    fresh.backend, fresh.scenario
                ));
            };
            let slo_slack = (0.25 * base.slo_violation_s as f64).max(15.0);
            if (fresh.slo_violation_s as f64 - base.slo_violation_s as f64).abs() > slo_slack {
                return Err(format!(
                    "{} x {}: SLO-violation seconds drifted {} -> {} (allowed +-{:.0})",
                    fresh.backend,
                    fresh.scenario,
                    base.slo_violation_s,
                    fresh.slo_violation_s,
                    slo_slack
                ));
            }
            let over_slack = (0.25 * base.overprovision_inst_s).max(30.0);
            if (fresh.overprovision_inst_s - base.overprovision_inst_s).abs() > over_slack {
                return Err(format!(
                    "{} x {}: over-provisioning drifted {:.0} -> {:.0} (allowed +-{:.0})",
                    fresh.backend,
                    fresh.scenario,
                    base.overprovision_inst_s,
                    fresh.overprovision_inst_s,
                    over_slack
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_bakeoff.json".into());

    let model = trained_model(&scale);
    let report = run_matrix(&scale, &model);
    let wins = monitorless_wins(&report);
    obs::progress(&format!("monitorless wins on {} scenario(s): {:?}", wins.len(), wins));

    if let Some(path) = check_path {
        // Only write the fresh matrix when asked explicitly — never
        // clobber the committed baseline from a check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("bake-off check passed against {path}"),
            Err(msg) => {
                eprintln!("bake-off check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table_bakeoff");
}
