//! Training-diversity ablation: how much does the mix of training
//! services (Solr + Memcache + Cassandra) matter for transfer to an
//! unseen application? (Section 3.3.4's motivation for diverse training
//! applications.)
//!
//! ```sh
//! cargo run -p monitorless-bench --bin train_diversity --release [-- --full]
//! ```

use monitorless::experiments::training_ablation;
use monitorless_bench::{telemetry_report, training_data, Scale};

fn main() {
    let scale = Scale::from_args();
    let data = training_data(&scale);
    let rows = training_ablation::run(&data, &scale.model_options(), &scale.eval_options(0xD1))
        .expect("diversity ablation");
    println!("Training-diversity ablation (transfer to the unseen three-tier app)\n");
    print!("{}", training_ablation::format(&rows));
    println!("\n(the paper trains on all three services so one model covers");
    println!(" CPU-, memory- and disk/network-bound saturation modes)");
    telemetry_report("train_diversity");
}
