//! Regenerates Table 8: baseline comparison on Sockshop (14 services,
//! three overlapping Locust load ramps).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table8_sockshop --release [-- --full]
//! ```

use monitorless::experiments::scenario::{run_eval_scenario, EvalApp};
use monitorless::experiments::{comparison_header, scenario};
use monitorless_bench::{telemetry_report, trained_model, Scale};

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    // The Locust schedule is fixed at 6000 s (runs at 1000/3000/5000 s);
    // the quick scale covers the first two runs including their overlap.
    let mut opts = scale.eval_options(0x88);
    opts.duration = if scale.full { 6000 } else { 2500 };
    let run = run_eval_scenario(EvalApp::Sockshop, Some(&model), &opts).expect("table 8 harness");
    let saturated: usize = run.ground_truth.iter().map(|&v| v as usize).sum();
    println!(
        "Table 8 — Sockshop (saturated ratio {:.1}%, paper: 10.1%)\n",
        100.0 * saturated as f64 / run.ground_truth.len() as f64
    );
    println!("{}", comparison_header());
    for row in scenario::comparison_rows(&run) {
        println!("{}", row.format());
    }
    println!("\n(paper shape: everything degrades vs TeaStore; CPU-AND-MEM leads,");
    println!(" monitorless second among the accurate detectors, OR/MEM flood FPs)");
    telemetry_report("table8_sockshop");
}
