//! Regenerates Table 6: baseline comparison on TeaStore (7 services,
//! multi-tenant with Sockshop, worst-case daily-pattern trace).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table6_teastore --release [-- --full]
//! ```

use monitorless::experiments::{comparison_header, table6};
use monitorless_bench::{telemetry_report, trained_model, Scale};

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    let (rows, run) = table6::run(&model, &scale.eval_options(0x66)).expect("table 6 harness");
    let saturated: usize = run.ground_truth.iter().map(|&v| v as usize).sum();
    println!(
        "Table 6 — TeaStore (saturated ratio {:.1}%, paper: 2.9%)\n",
        100.0 * saturated as f64 / run.ground_truth.len() as f64
    );
    println!("{}", comparison_header());
    for row in rows {
        println!("{}", row.format());
    }
    println!("\n(paper shape: accuracies high for CPU/AND/monitorless; MEM and OR");
    println!(" flood with false positives; monitorless has the fewest FN among");
    println!(" the accurate detectors)");
    telemetry_report("table6_teastore");
}
