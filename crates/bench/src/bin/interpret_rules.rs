//! Section 5 extensions demo: distills the trained forest into
//! depth-restricted scaling rules, trains the scale-in classifier, and
//! runs the training-set coverage check against the three-tier app.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin interpret_rules --release [-- --full]
//! ```

use monitorless::coverage::CoverageChecker;
use monitorless::experiments::scenario::{run_eval_scenario, EvalApp};
use monitorless::interpret::{distill, DistillOptions};
use monitorless::model::MonitorlessModel;
use monitorless::scalein::ScaleInModel;
use monitorless_bench::{telemetry_report, training_data, Scale};
use monitorless_learn::metrics::f1_score;

fn main() {
    let scale = Scale::from_args();
    let data = training_data(&scale);
    let opts = scale.model_options();
    let model = MonitorlessModel::train(&data, &opts).expect("train");

    // --- interpretability ---
    let distilled = distill(&model, &data, &DistillOptions::default()).expect("distill");
    println!(
        "Distilled scaling rules (student depth ≤ 3, fidelity {:.1}%):\n",
        100.0 * distilled.fidelity
    );
    for rule in &distilled.rules {
        println!("  {rule}");
    }

    // --- scale-in classifier ---
    let scalein = ScaleInModel::train(&data, &opts).expect("scale-in train");
    let pred = scalein
        .predict_batch(data.dataset.x(), data.dataset.groups())
        .expect("predict");
    let f1 = f1_score(&data.scalein_labels, &pred);
    let over: usize = data.scalein_labels.iter().map(|&v| v as usize).sum();
    println!(
        "\nScale-in classifier: {over}/{} overprovisioned training samples, training F1 = {f1:.3}",
        data.dataset.len()
    );

    // --- coverage check (Section 3.2.3) ---
    let checker = CoverageChecker::fit(&data).expect("coverage fit");
    let mut eval = scale.eval_options(0xCC);
    eval.record_raw = true;
    eval.duration = eval.duration.min(300);
    let run = run_eval_scenario(EvalApp::ThreeTier, None, &eval).expect("scenario");
    let raws = run.raw_instances.as_ref().expect("recorded");
    let refs: Vec<&[f64]> = raws[0].1.iter().map(|r| r.as_slice()).collect();
    let validation = monitorless_learn::Matrix::from_rows(&refs);
    let report = checker.check(&validation).expect("coverage check");
    println!(
        "\nTraining-set coverage vs the unseen three-tier web tier: {:.1}% covered, {} features out of range",
        100.0 * report.coverage_fraction(),
        report.uncovered.len()
    );
    for u in report.uncovered.iter().take(8) {
        println!(
            "  {:<40} train [{:.3}, {:.3}]  validation [{:.3}, {:.3}]",
            u.name, u.train_range.0, u.train_range.1, u.validation_range.0, u.validation_range.1
        );
    }
    telemetry_report("interpret_rules");
}
