//! Regenerates Table 4: top-30 features by random-forest importance.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table4_importances --release [-- --full]
//! ```

use monitorless::experiments::table4;
use monitorless_bench::{telemetry_report, trained_model, Scale};

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    let rows = table4::run(&model, 30);
    println!("Table 4 — top 30 features by importance\n");
    print!("{}", table4::format(&rows));
    let products = rows.iter().filter(|r| r.feature.contains(" × ")).count();
    let time = rows
        .iter()
        .filter(|r| r.feature.contains("-AVG") || r.feature.contains("-LAG"))
        .count();
    println!("\n{products}/{} are feature products, {time} use time variants", rows.len());
    println!("(paper: almost all top features are products, most gated by C-CPU levels)");
    telemetry_report("table4_importances");
}
