//! Validates every committed perf snapshot under `results/`.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin check_snapshots --release
//! ```
//!
//! The CI perf-gate matrix replays each bench with `--check` against
//! its committed `results/BENCH_<name>.json`. A truncated, hand-edited
//! or schema-drifted snapshot would turn those gates into silent
//! no-ops (a missing size row is simply never compared), so the `test`
//! job runs this checker first: every `BENCH_*.json` must parse, carry
//! `scale` / `seed` / its row array (`sizes` for the timing sweeps,
//! `cells` for the bake-off matrix) with at least the committed
//! sweep's row count, and every row must carry its bench's
//! required fields with finite numeric values. Snapshot files this
//! binary does not know about fail the run — registering the schema
//! here is part of adding a new perf gate.

use monitorless_std::json::Json;

/// One snapshot's schema: file name, the key of its row array
/// (`sizes` for the timing sweeps, `cells` for the bake-off matrix),
/// the minimum row count, and the fields every row must carry.
struct Schema {
    file: &'static str,
    rows_key: &'static str,
    min_rows: usize,
    /// Fields that must be finite numbers.
    row_fields: &'static [&'static str],
    /// Fields that must be non-empty strings.
    row_str_fields: &'static [&'static str],
}

const SCHEMAS: &[Schema] = &[
    Schema {
        file: "BENCH_table3.json",
        rows_key: "sizes",
        min_rows: 3,
        row_str_fields: &[],
        row_fields: &["rows", "n_trees", "legacy_ms", "presorted_ms", "speedup"],
    },
    Schema {
        file: "BENCH_predict.json",
        rows_key: "sizes",
        min_rows: 4,
        row_str_fields: &[],
        row_fields: &[
            "rows",
            "n_trees",
            "n_nodes",
            "legacy_ms",
            "flat_ms",
            "speedup",
        ],
    },
    Schema {
        file: "BENCH_featurize.json",
        rows_key: "sizes",
        min_rows: 3,
        row_str_fields: &[],
        row_fields: &[
            "rows",
            "raw_width",
            "out_width",
            "legacy_ms",
            "streaming_ms",
            "speedup",
        ],
    },
    Schema {
        file: "BENCH_obs.json",
        rows_key: "sizes",
        min_rows: 2,
        row_str_fields: &[],
        row_fields: &[
            "rows",
            "n_trees",
            "plain_ms",
            "traced_ms",
            "attributed_ms",
            "journal_overhead_pct",
            "plain_allocs_per_row",
        ],
    },
    Schema {
        file: "BENCH_tick.json",
        rows_key: "sizes",
        min_rows: 3,
        row_str_fields: &[],
        row_fields: &[
            "instances",
            "measured_ticks",
            "legacy_us_per_instance",
            "batched_us_per_instance",
            "speedup",
            "batched_allocs_per_tick",
        ],
    },
    Schema {
        file: "BENCH_sim.json",
        rows_key: "sizes",
        min_rows: 3,
        row_str_fields: &[],
        row_fields: &[
            "nodes",
            "containers",
            "measured_ticks",
            "dense_ms_per_tick",
            "event_ms_per_tick",
            "dense_sim_per_wall",
            "event_sim_per_wall",
            "speedup",
            "event_us_per_container_second",
            "event_allocs_per_tick",
        ],
    },
    Schema {
        file: "BENCH_train.json",
        rows_key: "sizes",
        min_rows: 4,
        row_str_fields: &["phase"],
        row_fields: &[
            "rows",
            "baseline_ms",
            "fast_ms",
            "speedup",
            "fast_allocs",
            "identical",
        ],
    },
    Schema {
        file: "BENCH_bakeoff.json",
        rows_key: "cells",
        min_rows: 12,
        row_str_fields: &["backend", "scenario"],
        row_fields: &[
            "ticks",
            "slo_violation_s",
            "overprovision_inst_s",
            "lag_p50_s",
            "lag_p99_s",
            "cold_starts",
            "flips",
        ],
    },
];

fn get<'j>(obj: &'j Json, key: &str) -> Option<&'j Json> {
    match obj {
        Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn finite_number(value: &Json) -> bool {
    match value {
        Json::Int(_) => true,
        Json::Num(x) => x.is_finite(),
        _ => false,
    }
}

fn check_file(schema: &Schema) -> Result<usize, String> {
    let path = format!("results/{}", schema.file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    match get(&json, "scale") {
        Some(Json::Str(_)) => {}
        _ => return Err(format!("{path}: missing string field `scale`")),
    }
    match get(&json, "seed") {
        Some(v) if finite_number(v) => {}
        _ => return Err(format!("{path}: missing numeric field `seed`")),
    }
    let key = schema.rows_key;
    let rows = match get(&json, key) {
        Some(Json::Arr(rows)) => rows,
        _ => return Err(format!("{path}: missing array field `{key}`")),
    };
    if rows.len() < schema.min_rows {
        return Err(format!(
            "{path}: `{key}` has {} rows, committed sweep needs at least {}",
            rows.len(),
            schema.min_rows
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        for field in schema.row_fields {
            match get(row, field) {
                Some(v) if finite_number(v) => {}
                Some(_) => {
                    return Err(format!("{path}: {key}[{i}].{field} is not a finite number"))
                }
                None => return Err(format!("{path}: {key}[{i}] is missing `{field}`")),
            }
        }
        for field in schema.row_str_fields {
            match get(row, field) {
                Some(Json::Str(v)) if !v.is_empty() => {}
                _ => return Err(format!("{path}: {key}[{i}].{field} is not a non-empty string")),
            }
        }
    }
    Ok(rows.len())
}

fn main() {
    let mut failures = Vec::new();
    for schema in SCHEMAS {
        match check_file(schema) {
            Ok(rows) => println!("results/{}: ok ({rows} rows)", schema.file),
            Err(msg) => failures.push(msg),
        }
    }
    // Every committed BENCH_*.json must be registered above, so a new
    // snapshot cannot ship without a schema (and therefore a gate).
    match std::fs::read_dir("results") {
        Ok(entries) => {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with("BENCH_")
                    && name.ends_with(".json")
                    && !SCHEMAS.iter().any(|s| s.file == name)
                {
                    failures.push(format!(
                        "results/{name}: unregistered snapshot — add its schema to \
                         check_snapshots"
                    ));
                }
            }
        }
        Err(e) => failures.push(format!("results/: cannot list: {e}")),
    }
    if !failures.is_empty() {
        for msg in &failures {
            eprintln!("snapshot check FAILED: {msg}");
        }
        std::process::exit(1);
    }
    println!("all committed perf snapshots are well-formed");
}
