//! Regenerates Table 2: the hyper-parameter grid search (5-fold
//! cross-validation over whole training configurations).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table2_gridsearch --release [-- --full]
//! ```
//!
//! `--full` evaluates the paper's complete grids (hundreds of
//! combinations — expect hours).

use monitorless::experiments::table2::{run, Algorithm, GridScale};
use monitorless::features::{FeaturePipeline, PipelineConfig};
use monitorless_bench::{telemetry_report, training_data, Scale};
use monitorless_obs as obs;

fn main() {
    let scale = Scale::from_args();
    let grid_scale = if scale.full {
        GridScale::Full
    } else {
        GridScale::Quick
    };
    let data = training_data(&scale);
    obs::progress("fitting the feature pipeline...");
    let pipeline_cfg = if scale.full {
        PipelineConfig::paper_default()
    } else {
        PipelineConfig::quick()
    };
    let (_, x) = FeaturePipeline::new(pipeline_cfg)
        .fit_transform(
            data.dataset.x(),
            data.dataset.y(),
            data.dataset.groups(),
            data.layout.clone(),
        )
        .expect("pipeline fit");
    obs::progress(&format!("searching grids over {} samples x {} features...", x.rows(), x.cols()));
    let rows = run(&x, data.dataset.y(), data.dataset.groups(), &Algorithm::all(), grid_scale)
        .expect("grid search");

    println!("Table 2 — grid search (best combination per algorithm)\n");
    println!("{:<22} {:>7} {:>8}  best parameters", "Algorithm", "F1(cv)", "combos");
    for r in rows {
        println!("{:<22} {:>7.3} {:>8}  {}", r.algorithm, r.best_f1, r.combinations, r.best_params);
    }
    telemetry_report("table2_gridsearch");
}
