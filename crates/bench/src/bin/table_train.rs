//! Training-pipeline perf snapshot: parallel episode generation,
//! zero-copy dataset assembly, incremental presort append, and the
//! shadow-retrain fast path built from all three.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table_train --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_train.json`
//! (override with `--out <path>`). Four phases, each comparing a fast
//! path against its retained or from-scratch baseline:
//!
//! * `generation` — `generate_training_data` at `n_jobs` 1 vs 4.
//!   Every run asserts the two outputs byte-identical (feature bits,
//!   labels, groups, thresholds, scale-in labels, observed
//!   bottlenecks): the parallel schedule may only change *when*
//!   episodes run, never what they compute.
//! * `assembly` — building the training matrix row by row through the
//!   legacy `instance_vector` → `Vec<Vec<f64>>` → `Matrix::from_rows`
//!   chain vs `instance_vector_write` into a pre-sized
//!   `MatrixBuilder` region. A counting global allocator asserts the
//!   zero-copy row loop performs **zero** heap allocations.
//! * `append` — refreshing a `PresortedDataset` after a 10% row delta:
//!   full rebuild of the concatenated matrix vs
//!   `PresortedDataset::append_rows`. The incremental cache is
//!   asserted bit-identical to the fresh presort every run.
//! * `retrain` — the end-to-end shadow retrain (label + ingest +
//!   challenger fit on the cached presort) vs a cold full retrain
//!   (feature-pipeline refit + forest fit on all rows).
//!
//! `--check <path>` re-measures at the current scale and exits
//! non-zero if the pipeline lost its edge: any phase's fast path more
//! than 2x the committed snapshot, the append speedup below 5x, any
//! assembly allocation, or any identity assertion not having run.
//! The 3x generation-speedup gate needs real cores and is enforced
//! only when `std::thread::available_parallelism()` reports at least
//! 4; on smaller hosts the check logs the skip and still verifies
//! byte identity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitorless::adapt::{RetrainParams, ShadowRetrainer};
use monitorless::training::{
    generate_training_data, run_fresh_episode, table1, TrainingData, TrainingOptions,
};
use monitorless_bench::telemetry_report;
use monitorless_learn::{Classifier, Matrix, MatrixBuilder, PresortedDataset, RandomForest};
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::{InstanceId, NodeId, Observation};
use monitorless_obs as obs;

/// System allocator wrapper counting allocation events, so the bench
/// can prove the zero-copy assembly loop never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One phase's measurement. `fast_allocs` is the fast path's heap
/// allocation count where the phase carries a 0-alloc contract
/// (assembly) and 0 elsewhere; `identical` is 1.0 iff the phase's
/// bit-identity assertion ran and passed this run.
#[derive(Debug, Clone, PartialEq)]
struct PhaseResult {
    phase: String,
    rows: usize,
    baseline_ms: f64,
    fast_ms: f64,
    speedup: f64,
    fast_allocs: f64,
    identical: f64,
}

monitorless_std::json_struct!(PhaseResult {
    phase,
    rows,
    baseline_ms,
    fast_ms,
    speedup,
    fast_allocs,
    identical,
});

/// The whole snapshot, as committed to `results/BENCH_train.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    /// Hardware threads the measuring host reported; the generation
    /// speedup gate only arms at >= 4.
    workers: usize,
    sizes: Vec<PhaseResult>,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    workers,
    sizes,
});

fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("at least one rep"))
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Phase 1: sequential vs parallel `generate_training_data`, asserted
/// byte-identical. Returns the sequential output for reuse downstream.
fn measure_generation(opts: &TrainingOptions) -> (PhaseResult, TrainingData) {
    let seq_opts = TrainingOptions { n_jobs: 1, ..*opts };
    let par_opts = TrainingOptions { n_jobs: 4, ..*opts };
    let (seq_ms, seq) = time_ms(1, || generate_training_data(&seq_opts).expect("sequential"));
    let (par_ms, par) = time_ms(1, || generate_training_data(&par_opts).expect("parallel"));

    assert_eq!(bits(seq.dataset.x()), bits(par.dataset.x()), "feature bytes diverged");
    assert_eq!(seq.dataset.y(), par.dataset.y(), "labels diverged");
    assert_eq!(seq.dataset.groups(), par.dataset.groups(), "groups diverged");
    let thr = |d: &TrainingData| -> Vec<(u32, Option<u64>)> {
        d.thresholds
            .iter()
            .map(|(id, t)| (*id, t.map(f64::to_bits)))
            .collect()
    };
    assert_eq!(thr(&seq), thr(&par), "thresholds diverged");
    assert_eq!(seq.scalein_labels, par.scalein_labels, "scale-in labels diverged");
    assert_eq!(seq.observed_bottlenecks, par.observed_bottlenecks, "bottlenecks diverged");

    let r = PhaseResult {
        phase: "generation".into(),
        rows: seq.dataset.len(),
        baseline_ms: seq_ms,
        fast_ms: par_ms,
        speedup: seq_ms / par_ms,
        fast_allocs: 0.0,
        identical: 1.0,
    };
    obs::progress(&format!(
        "  generation: seq {:.0} ms, 4 workers {:.0} ms ({:.2}x), byte-identical",
        r.baseline_ms, r.fast_ms, r.speedup
    ));
    (r, seq)
}

/// Bounded deterministic metric value (hash-mixed, no RNG state).
fn value(entity: u64, metric: u64, t: u64) -> f64 {
    let mut h = entity
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(metric.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(t.wrapping_mul(0x94d0_49bb_1331_11eb));
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 27;
    (h % 10_000) as f64 / 100.0
}

/// Phase 2: assembling `rows` catalog-width samples into a training
/// matrix — the legacy allocating chain vs the zero-copy builder
/// write. Both paths read identical pre-built observations.
fn measure_assembly(rows: usize) -> PhaseResult {
    let catalog = Catalog::standard();
    let width = catalog.host_len() + catalog.container_len();
    let inst = InstanceId(1);
    let observations: Vec<Observation> = (0..rows as u64)
        .map(|t| Observation {
            node: NodeId(0),
            time: t,
            host: (0..catalog.host_len())
                .map(|m| value(1, m as u64, t))
                .collect(),
            containers: vec![(
                inst,
                (0..catalog.container_len())
                    .map(|m| value(2, m as u64, t))
                    .collect(),
            )],
        })
        .collect();

    let (legacy_ms, legacy) = time_ms(3, || {
        let mut collected: Vec<Vec<f64>> = Vec::new();
        for o in &observations {
            collected.push(o.instance_vector(inst).expect("instance present"));
        }
        let refs: Vec<&[f64]> = collected.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    });

    let mut loop_allocs = u64::MAX;
    let (fast_ms, fast) = time_ms(3, || {
        let mut builder = MatrixBuilder::with_regions(1, rows, width);
        let mut written = 0usize;
        {
            let mut regions = builder.regions_mut();
            let region = regions.next().expect("one region");
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            for o in &observations {
                let row = &mut region[written * width..(written + 1) * width];
                if o.instance_vector_write(inst, row) {
                    written += 1;
                }
            }
            loop_allocs = loop_allocs.min(ALLOC_EVENTS.load(Ordering::Relaxed) - before);
        }
        builder.finish(&[written])
    });
    assert_eq!(bits(&legacy), bits(&fast), "assembly paths diverged");
    assert_eq!(loop_allocs, 0, "zero-copy assembly loop allocated");

    let r = PhaseResult {
        phase: "assembly".into(),
        rows,
        baseline_ms: legacy_ms,
        fast_ms,
        speedup: legacy_ms / fast_ms,
        fast_allocs: loop_allocs as f64,
        identical: 1.0,
    };
    obs::progress(&format!(
        "  assembly: legacy {:.2} ms, zero-copy {:.2} ms ({:.2}x), {} row allocs",
        r.baseline_ms, r.fast_ms, r.speedup, loop_allocs
    ));
    r
}

/// Synthetic feature matrix in telemetry shape: columns draw from a
/// shared grid of 2048 quantized levels spanning `value()`'s 0..100
/// range — monitoring signals (utilizations, rates, queue lengths)
/// mostly repeat an established vocabulary of values, but not so
/// heavily that a comparison sort can shortcut equal runs — plus a
/// sprinkling of NaN cells and one exact-tie constant. Cells where
/// `i % novel_every == 2` stay continuous (unquantized): values the
/// cache has never seen, forcing the append's insert-and-remap path
/// in every column.
fn feature_matrix(rows: usize, cols: usize, salt: u64, novel_every: usize) -> Matrix {
    let levels = 2048.0;
    let mut data = vec![0.0; rows * cols];
    for (i, v) in data.iter_mut().enumerate() {
        let raw = value(salt, i as u64, (i % cols) as u64);
        *v = match i % 101 {
            0 => f64::NAN,
            1 => 42.0,
            _ if novel_every > 0 && i % novel_every == 2 => raw + 0.000_001,
            _ => (raw / 100.0 * levels).floor() / levels * 100.0,
        };
    }
    Matrix::from_vec(rows, cols, data)
}

/// Phase 3: refreshing the presorted training cache after a 10% row
/// delta — full rebuild vs incremental merge append.
fn measure_append(rows: usize) -> PhaseResult {
    let cols = 64usize;
    let base_rows = rows - rows / 10;
    let base = feature_matrix(base_rows, cols, 3, 0);
    // ~5% of delta cells carry values the cache has never seen.
    let delta = feature_matrix(rows - base_rows, cols, 4, 19);
    let mut cache = PresortedDataset::build(&base);
    // Steady-state cache: the retraining loop provisions append slack
    // when it adopts a cache (`ShadowRetrainer::new`), so deltas land
    // in place.
    cache.reserve_rows(base.rows() / 4 + 256);
    // The from-scratch path pays to materialize the concatenated
    // matrix before it can presort; the incremental path never does.
    let (full_ms, fresh) = time_ms(5, || {
        let mut all = Vec::with_capacity(rows * cols);
        all.extend_from_slice(base.as_slice());
        all.extend_from_slice(delta.as_slice());
        PresortedDataset::build(&Matrix::from_vec(rows, cols, all))
    });
    // Clones happen outside the timed section: production appends
    // mutate the cache in place.
    let mut clones = vec![
        cache.clone(),
        cache.clone(),
        cache.clone(),
        cache.clone(),
        cache,
    ];
    let mut append_ms = f64::INFINITY;
    for ps in &mut clones {
        let start = Instant::now();
        ps.append_rows(&delta);
        append_ms = append_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let appended = clones.pop().expect("three clones");
    assert!(appended.bit_identical(&fresh), "incremental cache diverged from fresh presort");

    let r = PhaseResult {
        phase: "append".into(),
        rows,
        baseline_ms: full_ms,
        fast_ms: append_ms,
        speedup: full_ms / append_ms,
        fast_allocs: 0.0,
        identical: 1.0,
    };
    obs::progress(&format!(
        "  append: rebuild {:.1} ms, append {:.1} ms ({:.2}x), bit-identical",
        r.baseline_ms, r.fast_ms, r.speedup
    ));
    r
}

/// Phase 4: the shadow-retrain fast path (label + incremental ingest +
/// challenger fit on the cached presort) vs a cold full retrain
/// (feature-pipeline refit over all rows + forest fit).
fn measure_retrain(
    scale: &monitorless_bench::Scale,
    data: &TrainingData,
    opts: &TrainingOptions,
) -> PhaseResult {
    let champion = monitorless_bench::trained_model(scale);
    let configs = table1();
    let episode_opts = TrainingOptions { n_jobs: 1, ..*opts };
    let fresh = run_fresh_episode(&configs[0], &episode_opts, 0xF00D).expect("fresh episode");
    let holdout_run = run_fresh_episode(&configs[1], &episode_opts, 0xBEEF).expect("holdout");

    let params = RetrainParams::from_model(&champion);
    let seeded =
        ShadowRetrainer::new((*champion).clone(), data, params.clone()).expect("seed retrainer");
    let (fast_ms, report) = time_ms(1, || {
        let mut retrainer = seeded.clone();
        retrainer.ingest_run(&fresh).expect("ingest");
        let holdout = retrainer
            .label_episode(&holdout_run)
            .expect("holdout labels");
        retrainer.retrain(&holdout).expect("retrain")
    });

    // Cold baseline: refit the feature pipeline over base + episode
    // rows and fit the same challenger forest from scratch.
    let labeled = seeded.label_episode(&fresh).expect("episode labels");
    let rows = data.dataset.len() + labeled.raw.rows();
    let cols = data.dataset.x().cols();
    let mut all = Vec::with_capacity(rows * cols);
    all.extend_from_slice(data.dataset.x().as_slice());
    all.extend_from_slice(labeled.raw.as_slice());
    let full_x = Matrix::from_vec(rows, cols, all);
    let mut full_y = data.dataset.y().to_vec();
    full_y.extend_from_slice(&labeled.labels);
    let mut full_groups = data.dataset.groups().to_vec();
    full_groups.extend(std::iter::repeat_n(labeled.group, labeled.raw.rows()));
    let (full_ms, _) = time_ms(1, || {
        let pipeline = monitorless::features::FeaturePipeline::new(scale.model_options().pipeline);
        let (_, x) = pipeline
            .fit_transform(&full_x, &full_y, &full_groups, data.layout.clone())
            .expect("pipeline refit");
        let mut forest = RandomForest::new(params.forest.clone());
        forest.fit(&x, &full_y, None).expect("forest fit");
        forest
    });

    let r = PhaseResult {
        phase: "retrain".into(),
        rows,
        baseline_ms: full_ms,
        fast_ms,
        speedup: full_ms / fast_ms,
        fast_allocs: 0.0,
        identical: 1.0,
    };
    obs::progress(&format!(
        "  retrain: cold {:.0} ms, shadow {:.0} ms ({:.2}x), promoted = {}, challenger F1 {:.3}",
        r.baseline_ms, r.fast_ms, r.speedup, report.promoted, report.challenger_f1
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        if current.identical != 1.0 {
            return Err(format!("phase {} skipped its identity assertion", current.phase));
        }
        if current.fast_allocs != 0.0 {
            return Err(format!(
                "phase {} fast path performed {} heap allocations (contract: 0)",
                current.phase, current.fast_allocs
            ));
        }
        if let Some(baseline) = committed.sizes.iter().find(|s| s.phase == current.phase) {
            if current.fast_ms > 2.0 * baseline.fast_ms {
                return Err(format!(
                    "phase {} fast path took {:.1} ms, more than 2x the committed {:.1} ms",
                    current.phase, current.fast_ms, baseline.fast_ms
                ));
            }
        }
        if current.phase == "append" && current.speedup < 5.0 {
            return Err(format!(
                "incremental presort append is only {:.2}x faster than a full rebuild \
                 (need >= 5x)",
                current.speedup
            ));
        }
        if current.phase == "generation" {
            if report.workers >= 4 && current.speedup < 3.0 {
                return Err(format!(
                    "parallel generation is only {:.2}x faster than sequential on {} \
                     hardware threads (need >= 3x)",
                    current.speedup, report.workers
                ));
            }
            if report.workers < 4 {
                println!(
                    "generation speedup gate skipped: host reports {} hardware threads \
                     (< 4); byte identity still verified",
                    report.workers
                );
            }
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_train.json".into());

    let gen_opts = scale.training_options();
    let (assembly_rows, append_rows) = if scale.full {
        (20_000, 200_000)
    } else {
        (2_000, 40_000)
    };

    let (generation, data) = measure_generation(&gen_opts);
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        sizes: vec![
            generation,
            measure_assembly(assembly_rows),
            measure_append(append_rows),
            measure_retrain(&scale, &data, &gen_opts),
        ],
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table_train");
}
