//! Predict-path perf snapshot: flat blocked batched inference vs the
//! legacy recursive per-row walk, plus single-row autoscaler-tick
//! latency.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table7_predict --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_predict.json`
//! (override with `--out <path>`). `--full` sweeps 1k/20k/100k/1M-row
//! matrices; the default quick scale measures 1k/20k.
//!
//! The forest under test is paper-shaped (`RandomForestParams::
//! paper_selected()`: 250 trees, entropy, `min_samples_leaf 20`),
//! trained once on a 20k-row metric-shaped dataset — the same column
//! mix as `table3_treefit` (quantized percent gauges, counter deltas,
//! coarse levels, continuous latency-like values). Each sweep size then
//! scores a fresh matrix of that shape through three paths: the legacy
//! recursive walk (`RandomForest::predict_proba_legacy`), the flat
//! evaluator single-threaded, and the flat evaluator sharded over 4
//! pool workers. Flat and legacy outputs are cross-checked bit-for-bit
//! on every run, so the speedup numbers always describe identical
//! predictions.
//!
//! The tick section times one autoscaler tick — scoring a single
//! already-transformed row — the way the orchestrator does it: the old
//! path built a 1-row `Matrix` per call, the flat path walks the table
//! in place. A counting global allocator asserts the flat tick loop
//! performs **zero** heap allocations.
//!
//! `--check <path>` re-measures at the current scale and exits non-zero
//! if the flat evaluator lost its edge: wall time more than 2x the
//! committed snapshot's measurement for the same matrix size (coarse —
//! it must survive CI machine variance) or a same-run speedup over the
//! legacy walk below 1.5x.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitorless_bench::telemetry_report;
use monitorless_learn::{Classifier, Matrix, RandomForest, RandomForestParams};
use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

/// System allocator wrapper counting allocation events, so the bench
/// can prove the flat tick path never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One matrix size's batched-predict measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    rows: usize,
    cols: usize,
    n_trees: usize,
    n_nodes: usize,
    legacy_ms: f64,
    flat_ms: f64,
    flat_par_ms: f64,
    compile_ms: f64,
    speedup: f64,
}

monitorless_std::json_struct!(SizeResult {
    rows,
    cols,
    n_trees,
    n_nodes,
    legacy_ms,
    flat_ms,
    flat_par_ms,
    compile_ms,
    speedup,
});

/// Single-row autoscaler-tick latency (microseconds per tick).
#[derive(Debug, Clone, PartialEq)]
struct TickResult {
    legacy_us: f64,
    flat_us: f64,
    legacy_allocs_per_tick: f64,
    flat_allocs_per_tick: f64,
}

monitorless_std::json_struct!(TickResult {
    legacy_us,
    flat_us,
    legacy_allocs_per_tick,
    flat_allocs_per_tick,
});

/// The whole snapshot, as committed to `results/BENCH_predict.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    sizes: Vec<SizeResult>,
    tick: TickResult,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    sizes,
    tick,
});

/// Synthetic matrix shaped like the paper's feature tables — the same
/// five-column mix as `table3_treefit` (quantized percent gauges,
/// counter deltas, coarse levels, continuous latency-like values).
///
/// Unlike the training bench, the label is a *noisy* combination of
/// several utilization-style columns: a cleanly separable label grows
/// 5-node stumps that say nothing about inference cost, while noisy
/// interactions drive every tree down to its `min_samples_leaf` floor —
/// the node counts a forest trained on real platform metrics shows.
fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for (c, v) in row.iter_mut().enumerate() {
            *v = match c % 5 {
                // Utilization-style gauge in [0, 1].
                0 => rng.gen::<f64>(),
                // CPU-style percentage sampled at 0.1% granularity.
                1 => (rng.gen::<f64>() * 1000.0).floor() / 10.0,
                // Integer counter delta (packets, page faults, ...).
                2 => (rng.gen::<f64>() * 256.0).floor(),
                // Coarse gauge with a handful of levels.
                3 => (rng.gen::<f64>() * 8.0).floor(),
                // Continuous latency-like value.
                _ => rng.gen::<f64>(),
            };
        }
        // Saturation depends on several gauges plus their interaction,
        // blurred by noise on the same scale as the signal.
        let score = row[0]
            + 0.7 * row[d.min(6) - 1]
            + 0.5 * row[5 % d]
            + 0.8 * row[0] * row[5 % d]
            + (rng.gen::<f64>() - 0.5) * 0.9;
        y.push(u8::from(score > 1.3));
        data.extend_from_slice(&row);
    }
    (Matrix::from_vec(n, d, data), y)
}

/// Milliseconds of the fastest of `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
        drop(out);
    }
    best
}

fn measure_size(forest: &RandomForest, rows: usize, seed: u64) -> SizeResult {
    let cols = 30;
    let (x, _) = dataset(rows, cols, seed.wrapping_add(rows as u64));
    // Best-of-N everywhere the wall time allows: single-shot numbers on
    // a shared core are too noisy for a perf gate. Only the 1M-row
    // size (tens of seconds per walk) runs once.
    let reps = if rows >= 1_000_000 { 1 } else { 3 };

    obs::progress(&format!("batch predict, {rows} x {cols}, {} trees...", forest.trees().len()));
    let compile_ms = time_ms(reps, || forest.to_flat());
    let flat = forest.to_flat();

    // Interleave the timed walks rep by rep: on a shared core a noise
    // burst then hits the flat and legacy samples alike and mostly
    // cancels out of the ratio, where back-to-back rep groups would
    // let one side absorb the whole burst.
    let mut flat_out = Vec::new();
    let mut legacy_out = Vec::new();
    let mut flat_ms = f64::INFINITY;
    let mut flat_par_ms = f64::INFINITY;
    let mut legacy_ms = f64::INFINITY;
    for _ in 0..reps {
        flat_ms = flat_ms.min(time_ms(1, || {
            flat_out = flat.predict_proba(&x, 1);
        }));
        legacy_ms = legacy_ms.min(time_ms(1, || {
            legacy_out = forest.predict_proba_legacy(&x);
        }));
        flat_par_ms = flat_par_ms.min(time_ms(1, || flat.predict_proba(&x, 4)));
    }

    // The speedup claim only holds if both walks scored identically.
    assert_eq!(flat_out.len(), legacy_out.len());
    for (i, (f, l)) in flat_out.iter().zip(&legacy_out).enumerate() {
        assert_eq!(
            f.to_bits(),
            l.to_bits(),
            "flat and legacy predictions diverged on row {i} at {rows} rows ({f} vs {l})",
        );
    }

    let r = SizeResult {
        rows,
        cols,
        n_trees: forest.trees().len(),
        n_nodes: flat.n_nodes(),
        legacy_ms,
        flat_ms,
        flat_par_ms,
        compile_ms,
        speedup: legacy_ms / flat_ms,
    };
    obs::progress(&format!(
        "  legacy {:.1} ms, flat {:.1} ms ({:.2}x; 4 workers {:.1} ms, compile {:.2} ms)",
        r.legacy_ms, r.flat_ms, r.speedup, r.flat_par_ms, r.compile_ms
    ));
    r
}

/// Times `ticks` single-row predictions and returns
/// `(microseconds per tick, allocation events per tick)`.
fn measure_ticks(x: &Matrix, ticks: usize, mut f: impl FnMut(&[f64]) -> f64) -> (f64, f64) {
    let mut sink = 0.0;
    // Warm up so lazily grown state (none expected on the flat path)
    // does not count against the steady-state loop.
    for r in 0..64.min(x.rows()) {
        sink += f(x.row(r));
    }
    let alloc0 = ALLOC_EVENTS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for t in 0..ticks {
        sink += f(x.row(t % x.rows()));
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / ticks as f64;
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - alloc0;
    assert!(sink.is_finite());
    (us, allocs as f64 / ticks as f64)
}

fn measure_tick(forest: &RandomForest, seed: u64) -> TickResult {
    let (x, _) = dataset(512, 30, seed.wrapping_add(99));
    let flat = forest.to_flat();
    let ticks = 2_000;

    obs::progress("single-row autoscaler tick...");
    // The pre-flat `predict_features` path: a 1-row Matrix per call.
    let (legacy_us, legacy_allocs) = measure_ticks(&x, ticks, |row| {
        let m = Matrix::from_rows(&[row]);
        forest.predict_proba_legacy(&m)[0]
    });
    let (flat_us, flat_allocs) = measure_ticks(&x, ticks, |row| flat.predict_row(row));
    assert!(
        flat_allocs == 0.0,
        "flat tick path allocated ({flat_allocs} events/tick); the autoscaler hot loop must be \
         allocation-free"
    );

    let r = TickResult {
        legacy_us,
        flat_us,
        legacy_allocs_per_tick: legacy_allocs,
        flat_allocs_per_tick: flat_allocs,
    };
    obs::progress(&format!(
        "  legacy {:.1} us/tick ({:.0} allocs), flat {:.1} us/tick ({:.0} allocs)",
        r.legacy_us, r.legacy_allocs_per_tick, r.flat_us, r.flat_allocs_per_tick
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        let Some(baseline) = committed.sizes.iter().find(|s| s.rows == current.rows) else {
            continue;
        };
        if current.flat_ms > 2.0 * baseline.flat_ms {
            return Err(format!(
                "flat predict at {} rows took {:.1} ms, more than 2x the committed {:.1} ms",
                current.rows, current.flat_ms, baseline.flat_ms
            ));
        }
        if current.speedup < 1.5 {
            return Err(format!(
                "flat evaluator is only {:.2}x faster than legacy at {} rows (need >= 1.5x)",
                current.speedup, current.rows
            ));
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    // The predict counters and utilization gauge only record with
    // telemetry on; default to a quiet snapshot-only format so the
    // report always carries them.
    if !obs::enabled() {
        obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
    }
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_predict.json".into());

    // One paper-shaped forest serves every sweep size; training cost is
    // not what this bench measures.
    obs::progress("training paper-shaped forest (250 trees, 20k rows)...");
    let (xt, yt) = dataset(20_000, 30, scale.seed);
    let mut forest = RandomForest::new(RandomForestParams {
        n_jobs: 1,
        seed: scale.seed,
        ..RandomForestParams::paper_selected()
    });
    forest
        .fit(&xt, &yt, None)
        .expect("paper-shaped forest trains on the synthetic dataset");

    let sizes: &[usize] = if scale.full {
        &[1_000, 20_000, 100_000, 1_000_000]
    } else {
        &[1_000, 20_000]
    };
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        sizes: sizes
            .iter()
            .map(|&n| measure_size(&forest, n, scale.seed))
            .collect(),
        tick: measure_tick(&forest, scale.seed),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table7_predict");
}
