//! Regenerates Figure 3: per-service prediction timeline for the
//! TeaStore run (TP/FP/FN markers per service per second, plus the
//! workload and response-time curves) as CSV.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin fig3_timeline --release [-- --full] > fig3.csv
//! ```

use monitorless::experiments::fig3;
use monitorless::experiments::scenario::{run_eval_scenario, EvalApp};
use monitorless_bench::{telemetry_report, trained_model, Scale};
use monitorless_obs as obs;

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    let run = run_eval_scenario(EvalApp::TeaStore, Some(&model), &scale.eval_options(0x66))
        .expect("teastore scenario");
    let data = fig3::run(&run).expect("figure 3 harness");
    print!("{}", data.to_csv());
    for service in &data.services {
        let (tp, fp, fn_) = data.counts(service).expect("service exists");
        obs::progress(&format!("{service:<14} TP2={tp:<5} FP2={fp:<5} FN2={fn_}"));
    }
    telemetry_report("fig3_timeline");
}
