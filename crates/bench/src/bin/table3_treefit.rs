//! Tree-training perf snapshot: presorted column-oriented builder vs the
//! legacy per-node re-sorting builder, plus parallel grid-search scaling.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table3_treefit --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_table3.json`
//! (override with `--out <path>`). `--full` sweeps 1k/10k/50k-row
//! datasets; the default quick scale measures 1k rows only.
//!
//! The forest under test uses the library-default Gini criterion with
//! the paper-selected Random Forest shape (`min_samples_split 5`,
//! `min_samples_leaf 20`, sqrt feature sampling, bootstrap, 100 trees)
//! on a metric-shaped dataset: most columns quantized the way real
//! monitoring metrics are (percent gauges, counter deltas, coarse
//! levels), plus continuous latency-like columns.
//!
//! `--check <path>` re-measures at the current scale and exits non-zero
//! if the presorted builder lost its edge: wall time more than 2x the
//! committed snapshot's measurement for the same dataset size (coarse —
//! it must survive CI machine variance) or a same-run speedup over the
//! legacy builder below 1.5x. Both builders are also cross-checked for
//! bit-identical trees on every run, so the speedup numbers always
//! describe equivalent models.

use std::time::Instant;

use monitorless_bench::telemetry_report;
use monitorless_learn::model_selection::{GridSearch, KFold, ParamGrid, ParamValue};
use monitorless_learn::tree::{DecisionTree, DecisionTreeParams, MaxFeatures, SplitCriterion};
use monitorless_learn::{Classifier, Matrix, RandomForest, RandomForestParams};
use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

/// One dataset size's forest-fit measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    rows: usize,
    cols: usize,
    n_trees: usize,
    legacy_ms: f64,
    presorted_ms: f64,
    speedup: f64,
}

monitorless_std::json_struct!(SizeResult {
    rows,
    cols,
    n_trees,
    legacy_ms,
    presorted_ms,
    speedup,
});

/// Grid-search scaling measurement (candidates x folds on worker threads).
#[derive(Debug, Clone, PartialEq)]
struct GridResult {
    candidates: usize,
    folds: usize,
    jobs1_ms: f64,
    jobs4_ms: f64,
    parallel_speedup: f64,
    worker_utilization: f64,
}

monitorless_std::json_struct!(GridResult {
    candidates,
    folds,
    jobs1_ms,
    jobs4_ms,
    parallel_speedup,
    worker_utilization,
});

/// The whole snapshot, as committed to `results/BENCH_table3.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    sizes: Vec<SizeResult>,
    grid: GridResult,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    sizes,
    grid,
});

/// Synthetic training matrix shaped like the paper's feature tables:
/// a couple of informative columns, heavy-duplicate quantized columns
/// (counter-style metrics) and continuous noise.
fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = u8::from(i % 2 == 1);
        let informative = if label == 1 { 0.7 } else { 0.3 };
        for c in 0..d {
            let v = match c % 5 {
                // Informative utilization-style column.
                0 => informative + rng.gen::<f64>() * 0.4,
                // CPU-style percentage sampled at 0.1% granularity.
                1 => (rng.gen::<f64>() * 1000.0).floor() / 10.0,
                // Integer counter delta (packets, page faults, ...).
                2 => (rng.gen::<f64>() * 256.0).floor(),
                // Coarse gauge with a handful of levels.
                3 => (rng.gen::<f64>() * 8.0).floor(),
                // Continuous latency-like value.
                _ => rng.gen::<f64>(),
            };
            data.push(v);
        }
        y.push(label);
    }
    (Matrix::from_vec(n, d, data), y)
}

fn forest_params(n_trees: usize, seed: u64) -> RandomForestParams {
    RandomForestParams {
        n_estimators: n_trees,
        criterion: SplitCriterion::Gini,
        min_samples_split: 5,
        min_samples_leaf: 20,
        max_features: MaxFeatures::Sqrt,
        bootstrap: true,
        n_jobs: 1,
        seed,
        ..RandomForestParams::default()
    }
}

/// The pre-presort forest trainer: per tree, materialize the bootstrap
/// matrix and run the legacy per-node re-sorting builder. RNG use
/// mirrors `RandomForest::fit` exactly, so the resulting trees must be
/// bit-identical to the presorted path — asserted by the caller.
fn legacy_forest_fit(x: &Matrix, y: &[u8], params: &RandomForestParams) -> Vec<DecisionTree> {
    let n = x.rows();
    (0..params.n_estimators)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(
                params
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t as u64),
            );
            let indices: Vec<usize> = if params.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            let xb = x.select_rows(&indices);
            let yb: Vec<u8> = indices.iter().map(|&i| y[i]).collect();
            let wb = vec![1.0; indices.len()];
            let mut tree = DecisionTree::new(DecisionTreeParams {
                criterion: params.criterion,
                max_depth: params.max_depth,
                min_samples_split: params.min_samples_split,
                min_samples_leaf: params.min_samples_leaf,
                max_features: params.max_features,
                seed: rng.gen(),
                ..DecisionTreeParams::default()
            });
            if tree.fit_resorting(&xb, &yb, Some(&wb)).is_err() {
                let mut fallback = DecisionTree::new(DecisionTreeParams {
                    max_depth: Some(1),
                    ..DecisionTreeParams::default()
                });
                fallback
                    .fit_resorting(x, y, Some(&vec![1.0; n]))
                    .expect("full data trains a stump");
                return fallback;
            }
            tree
        })
        .collect()
}

/// Milliseconds of the fastest of `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
        drop(out);
    }
    best
}

fn measure_size(rows: usize, seed: u64) -> SizeResult {
    let cols = 30;
    let n_trees = 100;
    let (x, y) = dataset(rows, cols, seed);
    let params = forest_params(n_trees, seed);
    let reps = if rows >= 50_000 { 1 } else { 3 };

    obs::progress(&format!("forest fit, {rows} x {cols}, {n_trees} trees..."));
    let mut forest = RandomForest::new(params.clone());
    let presorted_ms = time_ms(reps, || {
        forest = RandomForest::new(params.clone());
        forest.fit(&x, &y, None).unwrap();
    });
    let mut legacy = Vec::new();
    let legacy_ms = time_ms(reps, || {
        legacy = legacy_forest_fit(&x, &y, &params);
    });

    // The speedup claim only holds if both builders grew the same model.
    assert_eq!(forest.trees().len(), legacy.len());
    for (t, (ours, theirs)) in forest.trees().iter().zip(&legacy).enumerate() {
        assert_eq!(
            monitorless_std::json::to_string(ours),
            monitorless_std::json::to_string(theirs),
            "presorted and legacy builders diverged on tree {t} at {rows} rows",
        );
    }

    let r = SizeResult {
        rows,
        cols,
        n_trees,
        legacy_ms,
        presorted_ms,
        speedup: legacy_ms / presorted_ms,
    };
    obs::progress(&format!(
        "  legacy {:.1} ms, presorted {:.1} ms ({:.2}x)",
        r.legacy_ms, r.presorted_ms, r.speedup
    ));
    r
}

fn measure_grid(rows: usize, seed: u64) -> GridResult {
    let (x, y) = dataset(rows, 30, seed);
    let splits = KFold::new(5).split(rows).unwrap();
    let grid = ParamGrid::new()
        .add("min_samples_leaf", vec![ParamValue::I(5), ParamValue::I(20)])
        .add(
            "criterion",
            vec![
                ParamValue::S("gini".into()),
                ParamValue::S("entropy".into()),
            ],
        );
    let candidates = grid.len();
    let folds = splits.len();
    let factory = |p: &monitorless_learn::model_selection::ParamSet| -> Box<dyn Classifier> {
        Box::new(RandomForest::new(RandomForestParams {
            n_estimators: 40,
            criterion: if p["criterion"].as_str() == "gini" {
                SplitCriterion::Gini
            } else {
                SplitCriterion::Entropy
            },
            min_samples_leaf: p["min_samples_leaf"].as_usize(),
            n_jobs: 1,
            seed,
            ..RandomForestParams::default()
        }))
    };

    obs::progress(&format!("grid search, {candidates} candidates x {folds} folds..."));
    let run = |n_jobs: usize| {
        let search = GridSearch::new(grid.clone(), splits.clone()).with_n_jobs(n_jobs);
        time_ms(1, || {
            search
                .run(factory, monitorless_learn::metrics::f1_score, &x, &y)
                .unwrap()
        })
    };
    let jobs1_ms = run(1);
    let jobs4_ms = run(4);
    let worker_utilization = obs::gauge_value("gridsearch.worker_utilization").unwrap_or(0.0);
    let r = GridResult {
        candidates,
        folds,
        jobs1_ms,
        jobs4_ms,
        parallel_speedup: jobs1_ms / jobs4_ms,
        worker_utilization,
    };
    obs::progress(&format!(
        "  1 job {:.1} ms, 4 jobs {:.1} ms ({:.2}x, utilization {:.2})",
        r.jobs1_ms, r.jobs4_ms, r.parallel_speedup, r.worker_utilization
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        let Some(baseline) = committed.sizes.iter().find(|s| s.rows == current.rows) else {
            continue;
        };
        if current.presorted_ms > 2.0 * baseline.presorted_ms {
            return Err(format!(
                "forest fit at {} rows took {:.1} ms, more than 2x the committed {:.1} ms",
                current.rows, current.presorted_ms, baseline.presorted_ms
            ));
        }
        if current.speedup < 1.5 {
            return Err(format!(
                "presorted builder is only {:.2}x faster than legacy at {} rows (need >= 1.5x)",
                current.speedup, current.rows
            ));
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    // The utilization gauges only record with telemetry on; default to a
    // quiet snapshot-only format so the report always carries them.
    if !obs::enabled() {
        obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
    }
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_table3.json".into());

    let sizes: &[usize] = if scale.full {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000]
    };
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        sizes: sizes.iter().map(|&n| measure_size(n, scale.seed)).collect(),
        grid: measure_grid(1_000, scale.seed),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table3_treefit");
}
