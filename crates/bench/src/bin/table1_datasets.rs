//! Regenerates Table 1: the 25 training configurations with the
//! bottleneck each one actually exhibits in the simulator.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table1_datasets [-- --full]
//! ```

use monitorless::experiments::table1;
use monitorless_bench::{telemetry_report, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = table1::run(&scale.training_options()).expect("table 1 harness");
    println!("Table 1 — training configurations (expected = paper, observed = simulator)\n");
    print!("{}", table1::format(&rows));
    let matching = rows.iter().filter(|r| r.matches).count();
    println!("\n{matching}/25 observed bottlenecks match the paper's classification");
    telemetry_report("table1_datasets");
}
