//! Fleet serving-tick perf snapshot: the one-pass batched
//! `Orchestrator::step` vs the retained per-instance
//! `Orchestrator::step_legacy`.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table_tick --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_tick.json`
//! (override with `--out <path>`). The default quick scale sweeps
//! simulated fleets of 100 / 1k / 10k instances; `--full` adds 100k.
//!
//! The model under test pairs the quick feature pipeline with a
//! paper-shaped forest (250 trees, entropy, `min_samples_leaf` 2)
//! fitted on in-distribution transformed rows, so the per-tick predict
//! cost is the paper's while training stays laptop-sized; it is
//! trained once and cached under `target/`. Each fleet size feeds both
//! serving paths identical catalog-width observation batches (952
//! host and 88 container metrics per instance, hash-derived, cycling
//! so the rolling windows keep evolving).
//!
//! Measurements interleave the two paths tick by tick (best-of-3
//! reps), so a noise burst on a shared core hits both sides alike. On
//! every measured tick the batched path's per-instance probabilities
//! and decisions are asserted bit-identical to the legacy loop's, and
//! a counting global allocator asserts the steady-state batched tick
//! (`n_jobs` 1) performs **zero** heap allocations. A 4-worker batched
//! column is reported for information; it allocates on pool spawn and
//! is not part of the 0-alloc contract.
//!
//! `--check <path>` re-measures at the current scale and exits
//! non-zero if the batched tick lost its edge: µs-per-instance more
//! than 2x the committed snapshot for the same fleet size, or a
//! same-run speedup over the legacy loop below 1.5x at fleets >= 1k.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::orchestrator::{InstancePrediction, Orchestrator};
use monitorless::training::generate_training_data;
use monitorless_bench::telemetry_report;
use monitorless_learn::RandomForestParams;
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::{InstanceId, NodeId, Observation};
use monitorless_obs as obs;

/// System allocator wrapper counting allocation events, so the bench
/// can prove the steady-state batched tick never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Ticks fed to every orchestrator before measuring: fills the
/// 16-sample rolling windows and grows every reused buffer to its
/// high-water mark.
const WARMUP_TICKS: usize = 24;

/// One fleet size's interleaved measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    instances: usize,
    measured_ticks: usize,
    legacy_us_per_instance: f64,
    batched_us_per_instance: f64,
    batched_par_us_per_instance: f64,
    speedup: f64,
    batched_allocs_per_tick: f64,
}

monitorless_std::json_struct!(SizeResult {
    instances,
    measured_ticks,
    legacy_us_per_instance,
    batched_us_per_instance,
    batched_par_us_per_instance,
    speedup,
    batched_allocs_per_tick,
});

/// The whole snapshot, as committed to `results/BENCH_tick.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    n_trees: usize,
    n_nodes: usize,
    feature_width: usize,
    packed: bool,
    walk_bytes: usize,
    sizes: Vec<SizeResult>,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    n_trees,
    n_nodes,
    feature_width,
    packed,
    walk_bytes,
    sizes,
});

/// Bounded deterministic metric value (hash-mixed, no RNG state).
fn value(entity: u64, metric: u64, t: u64) -> f64 {
    let mut h = entity
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(metric.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(t.wrapping_mul(0x94d0_49bb_1331_11eb));
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 27;
    (h % 10_000) as f64 / 100.0
}

/// Catalog-width observations for one tick: `n` instances over up to 3
/// nodes, values varying by instance, metric and tick.
fn observations(n: usize, t: u64) -> Vec<Observation> {
    let catalog = Catalog::standard();
    let nodes = n.clamp(1, 3);
    let mut out: Vec<Observation> = (0..nodes)
        .map(|node| Observation {
            node: NodeId(node as u32),
            time: t,
            host: (0..catalog.host_len())
                .map(|m| value(node as u64, m as u64, t))
                .collect(),
            containers: Vec::new(),
        })
        .collect();
    for i in 0..n {
        let container = (0..catalog.container_len())
            .map(|m| value(1000 + i as u64, m as u64, t))
            .collect();
        out[i % nodes]
            .containers
            .push((InstanceId(i as u32), container));
    }
    out
}

/// In-distribution feature rows for the grafted forest: a 32-instance
/// transformer fleet runs over the same hash-derived observation
/// stream the measurement loop serves, so the fitted trees see the
/// value ranges serving rows actually carry. (A synthetic fit set with
/// foreign ranges lets serving rows fall off every tree's spine after
/// a few comparisons, flattening the per-row walk and faking a cheap
/// legacy path.) Each column is then quantized to <= 64 levels inside
/// its observed range so the flat table's deduplicated threshold pool
/// stays within its u16 index and the packed walk engages. The label
/// is a noisy interaction of many range-normalized columns balanced at
/// the median, which keeps every region impure and drives trees down
/// to their `min_samples_leaf` floor instead of stopping at stumps.
fn graft_dataset(
    model: &MonitorlessModel,
    n: usize,
    seed: u64,
) -> (monitorless_learn::Matrix, Vec<u8>) {
    use monitorless_std::rng::{Rng, StdRng};
    let d = model.pipeline().output_width();
    let fleet = 32usize;
    let pipeline = Arc::new(model.pipeline().clone());
    let mut transformers: Vec<_> = (0..fleet)
        .map(|_| monitorless::features::InstanceTransformer::new(Arc::clone(&pipeline)))
        .collect();
    let mut raw = Vec::new();
    let mut data = Vec::with_capacity(n * d);
    let mut rows = 0usize;
    let mut t = 0u64;
    'ticks: loop {
        for observation in observations(fleet, t) {
            for i in 0..observation.n_instances() {
                if rows == n {
                    break 'ticks;
                }
                let id = observation.instance_vector_at(i, &mut raw);
                let row = transformers[id.0 as usize]
                    .push(&raw)
                    .expect("graft transform");
                data.extend_from_slice(row);
                rows += 1;
            }
        }
        t += 1;
    }
    // Quantize each column to <= 64 levels inside its observed range,
    // remembering the range so labels can mix scale-free values.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for c in 0..d {
        for r in 0..n {
            let v = data[r * d + c];
            if v.is_finite() {
                lo[c] = lo[c].min(v);
                hi[c] = hi[c].max(v);
            }
        }
        for r in 0..n {
            let v = &mut data[r * d + c];
            *v = if !v.is_finite() || hi[c] <= lo[c] {
                0.0
            } else {
                lo[c] + ((*v - lo[c]) / (hi[c] - lo[c]) * 63.0).round() * (hi[c] - lo[c]) / 63.0
            };
        }
    }
    // Noisy many-column interaction score, split at the median so the
    // classes stay balanced.
    let mut rng = StdRng::seed_from_u64(seed);
    let norm = |v: f64, c: usize| {
        if hi[c] <= lo[c] {
            0.0
        } else {
            (v - lo[c]) / (hi[c] - lo[c])
        }
    };
    let mut scores: Vec<f64> = (0..n)
        .map(|r| {
            let row = &data[r * d..(r + 1) * d];
            let mut s = 0.0;
            for k in 0..16usize {
                let c = (k * 29 + 3) % d;
                let c2 = (k * 53 + 11) % d;
                let w = if k % 2 == 0 { 1.0 } else { -1.0 };
                s += w * norm(row[c], c) + 0.6 * norm(row[c], c) * norm(row[c2], c2);
            }
            s + (rng.gen::<f64>() - 0.5) * 1.2
        })
        .collect();
    let mut sorted = scores.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[n / 2];
    let y = scores.drain(..).map(|s| u8::from(s > median)).collect();
    (monitorless_learn::Matrix::from_vec(n, d, data), y)
}

/// The model under test: the quick feature pipeline paired with a
/// paper-shaped 250-tree forest fitted on in-distribution transformed
/// rows ([`graft_dataset`]) with a `min_samples_leaf` of 2, so served
/// rows walk paper-depth paths. Cached under `target/` so re-runs skip
/// both trainings.
fn tick_model(seed: u64) -> Arc<MonitorlessModel> {
    let path = std::path::PathBuf::from(format!("target/monitorless-tickmodel-{seed}.json"));
    if let Ok(model) = MonitorlessModel::load(&path) {
        obs::progress(&format!("loaded cached model from {}", path.display()));
        return Arc::new(model);
    }
    obs::progress("training base model (quick pipeline)...");
    let data = generate_training_data(&monitorless::training::TrainingOptions::quick(seed))
        .expect("training-data generation");
    let base = MonitorlessModel::train(&data, &ModelOptions::quick()).expect("base model training");
    let width = base.pipeline().output_width();
    obs::progress(&format!("fitting deep forest (250 trees, 12k x {width})..."));
    let (x, y) = graft_dataset(&base, 12_000, seed);
    let mut forest = monitorless_learn::RandomForest::new(RandomForestParams {
        min_samples_leaf: 2,
        n_jobs: 4,
        seed,
        ..RandomForestParams::paper_selected()
    });
    monitorless_learn::Classifier::fit(&mut forest, &x, &y, None)
        .expect("paper-shaped forest trains on the quantized dataset");
    let model = base
        .with_forest(forest)
        .expect("forest matches pipeline width");
    if model.save(&path).is_ok() {
        obs::progress(&format!("cached model at {}", path.display()));
    }
    Arc::new(model)
}

fn assert_bit_identical(n: usize, tick: usize, a: &[InstancePrediction], b: &[InstancePrediction]) {
    assert_eq!(a.len(), b.len(), "fleet {n} tick {tick}: prediction count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.instance, y.instance, "fleet {n} tick {tick}: instance order");
        assert_eq!(
            x.probability.to_bits(),
            y.probability.to_bits(),
            "fleet {n} tick {tick} {}: probabilities diverged ({} vs {})",
            x.instance,
            x.probability,
            y.probability
        );
        assert_eq!(x.saturated, y.saturated, "fleet {n} tick {tick} {}: decision", x.instance);
    }
}

fn measure_size(model: &Arc<MonitorlessModel>, n: usize) -> SizeResult {
    obs::progress(&format!("fleet of {n} instances..."));
    // A small cycle of pregenerated tick batches keeps the windows
    // evolving without per-tick generation cost inside the timed loop.
    let cycle: Vec<Vec<Observation>> = (0..4).map(|t| observations(n, t as u64)).collect();
    let mut batched = Orchestrator::new(Arc::clone(model));
    let mut batched_par = Orchestrator::new(Arc::clone(model));
    batched_par.set_n_jobs(4);
    let mut legacy = Orchestrator::new(Arc::clone(model));
    for t in 0..WARMUP_TICKS {
        let observed = &cycle[t % cycle.len()];
        batched.step(observed).expect("batched warmup tick");
        batched_par.step(observed).expect("parallel warmup tick");
        legacy.step_legacy(observed).expect("legacy warmup tick");
    }

    // Interleave the paths tick by tick, best-of-3 reps: a noise burst
    // hits batched and legacy samples alike and cancels out of the
    // ratio. Every measured tick cross-checks bit-identity.
    let reps = 3;
    let ticks = (2_000 / n).clamp(1, 20);
    let mut batched_us = f64::INFINITY;
    let mut batched_par_us = f64::INFINITY;
    let mut legacy_us = f64::INFINITY;
    let mut batched_allocs = 0u64;
    let mut tick_no = WARMUP_TICKS;
    for _ in 0..reps {
        let mut tb = 0.0;
        let mut tp = 0.0;
        let mut tl = 0.0;
        for _ in 0..ticks {
            let observed = &cycle[tick_no % cycle.len()];
            let a0 = ALLOC_EVENTS.load(Ordering::Relaxed);
            let t0 = Instant::now();
            let b = batched.step(observed).expect("batched tick");
            tb += t0.elapsed().as_secs_f64();
            batched_allocs += ALLOC_EVENTS.load(Ordering::Relaxed) - a0;
            let t1 = Instant::now();
            let l = legacy.step_legacy(observed).expect("legacy tick");
            tl += t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let p = batched_par.step(observed).expect("parallel tick");
            tp += t2.elapsed().as_secs_f64();
            assert_bit_identical(n, tick_no, b, l);
            assert_bit_identical(n, tick_no, p, l);
            tick_no += 1;
        }
        let per_instance = 1e6 / (ticks * n) as f64;
        batched_us = batched_us.min(tb * per_instance);
        batched_par_us = batched_par_us.min(tp * per_instance);
        legacy_us = legacy_us.min(tl * per_instance);
    }
    let allocs_per_tick = batched_allocs as f64 / (reps * ticks) as f64;
    assert!(
        batched_allocs == 0,
        "batched tick allocated ({allocs_per_tick} events/tick over {} ticks); the steady-state \
         fleet tick must be allocation-free",
        reps * ticks
    );

    let r = SizeResult {
        instances: n,
        measured_ticks: reps * ticks,
        legacy_us_per_instance: legacy_us,
        batched_us_per_instance: batched_us,
        batched_par_us_per_instance: batched_par_us,
        speedup: legacy_us / batched_us,
        batched_allocs_per_tick: allocs_per_tick,
    };
    obs::progress(&format!(
        "  legacy {:.2} us/inst, batched {:.2} us/inst ({:.2}x; 4 workers {:.2} us/inst, 0 allocs)",
        r.legacy_us_per_instance,
        r.batched_us_per_instance,
        r.speedup,
        r.batched_par_us_per_instance
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        if let Some(baseline) = committed
            .sizes
            .iter()
            .find(|s| s.instances == current.instances)
        {
            if current.batched_us_per_instance > 2.0 * baseline.batched_us_per_instance {
                return Err(format!(
                    "batched tick at {} instances took {:.2} us/inst, more than 2x the committed \
                     {:.2} us/inst",
                    current.instances,
                    current.batched_us_per_instance,
                    baseline.batched_us_per_instance
                ));
            }
        }
        if current.instances >= 1_000 && current.speedup < 1.5 {
            return Err(format!(
                "batched tick is only {:.2}x faster than the per-instance loop at {} instances \
                 (need >= 1.5x)",
                current.speedup, current.instances
            ));
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_tick.json".into());

    let model = tick_model(scale.seed);
    let flat = model.flat();
    obs::progress(&format!(
        "forest: {} trees, {} nodes, packed = {} ({} walk bytes)",
        flat.n_trees(),
        flat.n_nodes(),
        flat.is_packed(),
        flat.walk_bytes()
    ));

    let sizes: &[usize] = if scale.full {
        &[100, 1_000, 10_000, 100_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        n_trees: flat.n_trees(),
        n_nodes: flat.n_nodes(),
        feature_width: model.pipeline().output_width(),
        packed: flat.is_packed(),
        walk_bytes: flat.walk_bytes(),
        sizes: sizes.iter().map(|&n| measure_size(&model, n)).collect(),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table_tick");
}
