//! Regenerates Table 3: training time, per-sample classification time
//! and F1₂ on the first validation set (the three-tier application) for
//! all six classifiers.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table3_algorithms --release [-- --full]
//! ```

use monitorless::experiments::table2::GridScale;
use monitorless::experiments::table3;
use monitorless::features::PipelineConfig;
use monitorless_bench::{telemetry_report, training_data, Scale};

fn main() {
    let scale = Scale::from_args();
    let data = training_data(&scale);
    let pipeline_cfg = if scale.full {
        PipelineConfig::paper_default()
    } else {
        PipelineConfig::quick()
    };
    let rows = table3::run(
        &data,
        pipeline_cfg,
        &scale.eval_options(0x33),
        if scale.full {
            GridScale::Full
        } else {
            GridScale::Quick
        },
    )
    .expect("table 3 harness");
    println!("Table 3 — classifier comparison (validation: three-tier app)\n");
    print!("{}", table3::format(&rows));
    println!("\n(paper: Random Forest wins with F1_2 = 0.997; tree ensembles lead)");
    telemetry_report("table3_algorithms");
}
