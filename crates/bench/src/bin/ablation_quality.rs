//! Quality ablations for the design choices called out in DESIGN.md:
//!
//! 1. feature-pipeline variants (no products / no time features / PCA)
//!    scored by transfer F1₂ on the three-tier application;
//! 2. decision-threshold sweep (the paper picks 0.4 to avoid FNs);
//! 3. instance→application aggregation rule (OR vs AND vs majority).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin ablation_quality --release [-- --full]
//! ```

use std::sync::Arc;

use monitorless::experiments::scenario::{run_eval_scenario, EvalApp, EVAL_LAG};
use monitorless::features::{PipelineConfig, Reduction};
use monitorless::model::MonitorlessModel;
use monitorless::orchestrator::Aggregation;
use monitorless_bench::{telemetry_report, training_data, Scale};
use monitorless_learn::metrics::lagged_confusion;

fn main() {
    let scale = Scale::from_args();
    let data = training_data(&scale);
    let base = scale.model_options();

    // --- 1. pipeline ablations ---
    println!("Pipeline ablation (transfer F1_2 / Acc_2 on the three-tier app):\n");
    println!("{:<16} {:>9} {:>7} {:>7}", "variant", "features", "F1_2", "Acc_2");
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("full", base.pipeline),
        (
            "no-products",
            PipelineConfig {
                products: false,
                ..base.pipeline
            },
        ),
        (
            "no-time",
            PipelineConfig {
                time_features: false,
                ..base.pipeline
            },
        ),
        (
            "snapshot-only",
            PipelineConfig {
                products: false,
                time_features: false,
                ..base.pipeline
            },
        ),
        (
            "pca",
            PipelineConfig {
                reduce1: Reduction::paper_pca(),
                reduce2: Reduction::paper_pca(),
                ..base.pipeline
            },
        ),
    ];
    for (name, pipeline) in variants {
        let opts = monitorless::model::ModelOptions {
            pipeline,
            ..base.clone()
        };
        let model = Arc::new(MonitorlessModel::train(&data, &opts).expect("train"));
        let run = run_eval_scenario(EvalApp::ThreeTier, Some(&model), &scale.eval_options(0xAB))
            .expect("scenario");
        let cm = lagged_confusion(&run.ground_truth, run.monitorless.as_ref().unwrap(), EVAL_LAG);
        println!(
            "{:<16} {:>9} {:>7.3} {:>7.3}",
            name,
            model.pipeline().output_width(),
            cm.f1(),
            cm.accuracy()
        );
    }

    // --- 2. decision-threshold sweep ---
    let model = Arc::new(MonitorlessModel::train(&data, &base).expect("train"));
    println!("\nDecision-threshold sweep (paper picks 0.4 to avoid FNs):\n");
    println!("{:>9} {:>6} {:>6} {:>7} {:>7}", "threshold", "FN_2", "FP_2", "F1_2", "Acc_2");
    for threshold in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut m = (*model).clone();
        m.set_threshold(threshold);
        let m = Arc::new(m);
        let run = run_eval_scenario(EvalApp::ThreeTier, Some(&m), &scale.eval_options(0xAB))
            .expect("scenario");
        let cm = lagged_confusion(&run.ground_truth, run.monitorless.as_ref().unwrap(), EVAL_LAG);
        println!(
            "{:>9.1} {:>6} {:>6} {:>7.3} {:>7.3}",
            threshold,
            cm.fn_,
            cm.fp,
            cm.f1(),
            cm.accuracy()
        );
    }

    // --- 3. aggregation rules ---
    println!("\nAggregation rule over TeaStore's 7 services (paper uses OR):\n");
    let run = run_eval_scenario(EvalApp::TeaStore, Some(&model), &scale.eval_options(0xAC))
        .expect("scenario");
    let per_service = run.per_service.as_ref().expect("model given");
    println!("{:<10} {:>6} {:>6} {:>7} {:>7}", "rule", "FN_2", "FP_2", "F1_2", "Acc_2");
    for (name, rule) in [
        ("OR", Aggregation::Or),
        ("majority", Aggregation::Majority),
        ("AND", Aggregation::And),
    ] {
        let n = run.ground_truth.len();
        let mut pred = vec![0u8; n];
        for (t, p) in pred.iter_mut().enumerate() {
            let labels: Vec<u8> = per_service.iter().map(|(_, s)| s[t]).collect();
            *p = rule.combine(&labels);
        }
        let cm = lagged_confusion(&run.ground_truth, &pred, EVAL_LAG);
        println!("{:<10} {:>6} {:>6} {:>7.3} {:>7.3}", name, cm.fn_, cm.fp, cm.f1(), cm.accuracy());
    }
    telemetry_report("ablation_quality");
}
