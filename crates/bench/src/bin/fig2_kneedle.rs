//! Regenerates Figure 2: observed throughput, smoothed curve and the
//! Kneedle difference curve for a linearly increasing Solr load.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin fig2_kneedle [-- --full] [-- --csv]
//! ```

use monitorless::experiments::fig2::{run, Fig2Options};
use monitorless_bench::{telemetry_report, Scale};

fn main() {
    let scale = Scale::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    let opts = Fig2Options {
        ramp_seconds: if scale.full { 1000 } else { 300 },
        peak_rps: 1000.0,
        seed: scale.seed,
    };
    let data = run(&opts).expect("figure 2 harness");
    if csv {
        print!("{}", data.to_csv());
        return;
    }
    println!("Figure 2 (paper: knee/elbow around 700 requests/sec)\n");
    println!(
        "detected knee: workload = {:.0} req/s, Y = {:.1}, strength = {:.3}",
        data.knee.x, data.knee.y, data.knee.strength
    );
    println!("candidates: {:?}", data.knee.candidates);
    println!("\nuse --csv to dump the three series (observed/smoothed/difference)");
    telemetry_report("fig2_kneedle");
}
