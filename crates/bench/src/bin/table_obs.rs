//! Observability-overhead snapshot: what drift tracing, prediction
//! attribution and the causal journal cost on the serving path.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table_obs --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_obs.json`
//! (override with `--out <path>`). The forest under test is the same
//! paper-shaped ensemble as `table7_predict` (250 trees, entropy,
//! `min_samples_leaf 20`) trained on a 20k-row metric-shaped dataset,
//! and each size (1k and 100k rows; `--full` adds 1M) scores the same
//! matrix through three serving configurations:
//!
//! * **plain** — `predict_row` with tracing off. A counting global
//!   allocator asserts this loop performs **zero** heap allocations:
//!   carrying the attribution table (`node_value`) must not reintroduce
//!   allocation into the autoscaler hot path.
//! * **traced** — the same walk plus one ring-journal record per row
//!   (trace mint + `obs::record`), the way the orchestrator journals a
//!   tick under `--trace ring`.
//! * **attributed** — `predict_row_attributed` filling a reused
//!   per-feature contribution buffer. Its probability is asserted
//!   bit-identical to the plain walk on every row, so the overhead
//!   number always describes the same predictions.
//!
//! A separate micro-section times raw `obs::record` appends to size the
//! journal itself, and reports how many records survived in the ring
//! versus were overwritten (the ring keeps the newest
//! `JOURNAL_CAPACITY`).
//!
//! `--check <path>` re-measures at the current scale and exits non-zero
//! if observability got expensive: plain or attributed wall time more
//! than 2x the committed snapshot for the same matrix size (coarse — it
//! must survive CI machine variance), or a same-run attribution-off
//! journal overhead above 10% of the bare predict walk at every
//! measured size (a real record-path regression is size-independent;
//! single-size excursions are CI noise).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use monitorless_bench::telemetry_report;
use monitorless_learn::{Classifier, FlatEnsemble, Matrix, RandomForest, RandomForestParams};
use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

/// System allocator wrapper counting allocation events, so the bench
/// can prove the attribution-off serving path never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One matrix size's serving-path measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    rows: usize,
    cols: usize,
    n_trees: usize,
    n_nodes: usize,
    /// `predict_row` loop, tracing off (ms for the whole matrix).
    plain_ms: f64,
    /// `predict_row` plus one ring-journal record per row (ms).
    traced_ms: f64,
    /// `predict_row_attributed` loop, reused contribution buffer (ms).
    attributed_ms: f64,
    /// Same-run `(traced - plain) / plain`, in percent: the cost of the
    /// audit trail with attribution off.
    journal_overhead_pct: f64,
    /// Same-run `attributed / plain` ratio.
    attribution_ratio: f64,
    /// Allocation events per row in the plain loop (must be 0).
    plain_allocs_per_row: f64,
}

monitorless_std::json_struct!(SizeResult {
    rows,
    cols,
    n_trees,
    n_nodes,
    plain_ms,
    traced_ms,
    attributed_ms,
    journal_overhead_pct,
    attribution_ratio,
    plain_allocs_per_row,
});

/// Raw journal append throughput.
#[derive(Debug, Clone, PartialEq)]
struct JournalResult {
    /// Microseconds per `obs::record` append in ring mode.
    record_us: f64,
    /// Microseconds per `obs::record` call with tracing off (the no-op
    /// guard everyone pays in production defaults).
    record_off_us: f64,
    /// Records appended in the micro-section.
    appended: f64,
    /// Records still in the ring afterwards (capacity bound).
    queued: f64,
    /// Records evicted by overwrite (appended beyond capacity).
    overwritten: f64,
}

monitorless_std::json_struct!(JournalResult {
    record_us,
    record_off_us,
    appended,
    queued,
    overwritten,
});

/// The whole snapshot, as committed to `results/BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    sizes: Vec<SizeResult>,
    journal: JournalResult,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    sizes,
    journal,
});

/// Synthetic matrix shaped like the paper's feature tables — the same
/// five-column mix as `table7_predict`, so the plain-path numbers are
/// directly comparable with that bench's tick section.
fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for (c, v) in row.iter_mut().enumerate() {
            *v = match c % 5 {
                0 => rng.gen::<f64>(),
                1 => (rng.gen::<f64>() * 1000.0).floor() / 10.0,
                2 => (rng.gen::<f64>() * 256.0).floor(),
                3 => (rng.gen::<f64>() * 8.0).floor(),
                _ => rng.gen::<f64>(),
            };
        }
        let score = row[0]
            + 0.7 * row[d.min(6) - 1]
            + 0.5 * row[5 % d]
            + 0.8 * row[0] * row[5 % d]
            + (rng.gen::<f64>() - 0.5) * 0.9;
        y.push(u8::from(score > 1.3));
        data.extend_from_slice(&row);
    }
    (Matrix::from_vec(n, d, data), y)
}

/// Milliseconds of the fastest of `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
        drop(out);
    }
    best
}

/// Switches the journal trace mode while keeping the export format.
fn set_trace(mode: obs::TraceMode) {
    obs::init(&obs::TelemetryConfig::with_format(obs::format()).with_trace(mode));
}

fn measure_size(flat: &FlatEnsemble, n_trees: usize, rows: usize, seed: u64) -> SizeResult {
    let cols = 30;
    let (x, _) = dataset(rows, cols, seed.wrapping_add(rows as u64));
    // Best-of-N everywhere the wall time allows; the 1M-row size (tens
    // of seconds per walk) runs once.
    let reps = match rows {
        r if r >= 1_000_000 => 1,
        r if r >= 100_000 => 3,
        _ => 5,
    };

    obs::progress(&format!("serving path, {rows} x {cols}, {n_trees} trees..."));

    set_trace(obs::TraceMode::Off);
    let mut plain = vec![0.0; rows];
    let mut attributed = vec![0.0; rows];
    let mut contrib = vec![0.0; flat.n_features()];
    // Warm up once so the timed loops start from steady state.
    for (r, p) in plain.iter_mut().enumerate() {
        *p = flat.predict_row(x.row(r));
    }

    // Interleave the three serving configurations rep by rep: on a
    // shared core a noise burst then hits all three samples alike and
    // mostly cancels out of the overhead ratios, where back-to-back rep
    // groups would let one configuration absorb the whole burst.
    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut attributed_ms = f64::INFINITY;
    let mut plain_allocs = 0u64;
    for _ in 0..reps {
        // --- plain: tracing off, must be allocation-free ---
        let alloc0 = ALLOC_EVENTS.load(Ordering::Relaxed);
        plain_ms = plain_ms.min(time_ms(1, || {
            for (r, p) in plain.iter_mut().enumerate() {
                *p = flat.predict_row(x.row(r));
            }
        }));
        plain_allocs += ALLOC_EVENTS.load(Ordering::Relaxed) - alloc0;

        // --- traced: one ring-journal record per row ---
        set_trace(obs::TraceMode::Ring);
        traced_ms = traced_ms.min(time_ms(1, || {
            let mut sink = 0.0;
            for r in 0..rows {
                let p = flat.predict_row(x.row(r));
                obs::record("bench.predict", obs::next_trace(), &[("proba", p)], &[]);
                sink += p;
            }
            assert!(sink.is_finite());
        }));
        set_trace(obs::TraceMode::Off);
        let _ = obs::drain();

        // --- attributed: per-feature contributions, reused buffer ---
        attributed_ms = attributed_ms.min(time_ms(1, || {
            for (r, p) in attributed.iter_mut().enumerate() {
                *p = flat.predict_row_attributed(x.row(r), &mut contrib);
            }
        }));
    }
    assert!(
        plain_allocs == 0,
        "attribution-off predict loop allocated ({plain_allocs} events over {reps} reps); the \
         serving hot path must stay allocation-free"
    );

    // The overhead claim only holds if both walks scored identically.
    for (r, (p, a)) in plain.iter().zip(&attributed).enumerate() {
        assert_eq!(
            p.to_bits(),
            a.to_bits(),
            "attributed and plain predictions diverged on row {r} at {rows} rows ({a} vs {p})",
        );
    }

    let r = SizeResult {
        rows,
        cols,
        n_trees,
        n_nodes: flat.n_nodes(),
        plain_ms,
        traced_ms,
        attributed_ms,
        journal_overhead_pct: 100.0 * (traced_ms - plain_ms) / plain_ms,
        attribution_ratio: attributed_ms / plain_ms,
        plain_allocs_per_row: plain_allocs as f64 / rows as f64,
    };
    obs::progress(&format!(
        "  plain {:.1} ms, traced {:.1} ms ({:+.1}%), attributed {:.1} ms ({:.2}x)",
        r.plain_ms, r.traced_ms, r.journal_overhead_pct, r.attributed_ms, r.attribution_ratio
    ));
    r
}

fn measure_journal() -> JournalResult {
    const APPENDS: usize = 100_000;
    obs::progress("journal append micro-section...");

    set_trace(obs::TraceMode::Off);
    let t0 = Instant::now();
    for i in 0..APPENDS {
        obs::record("bench.journal", i as u64 + 1, &[("i", i as f64)], &[]);
    }
    let record_off_us = t0.elapsed().as_secs_f64() * 1e6 / APPENDS as f64;

    set_trace(obs::TraceMode::Ring);
    let _ = obs::drain();
    let before = obs::journal_stats();
    let t0 = Instant::now();
    for i in 0..APPENDS {
        obs::record("bench.journal", i as u64 + 1, &[("i", i as f64)], &[("path", "bench")]);
    }
    let record_us = t0.elapsed().as_secs_f64() * 1e6 / APPENDS as f64;
    let after = obs::journal_stats();
    set_trace(obs::TraceMode::Off);
    let _ = obs::drain();

    let r = JournalResult {
        record_us,
        record_off_us,
        appended: (after.records - before.records) as f64,
        queued: after.queued as f64,
        overwritten: (after.overwritten - before.overwritten) as f64,
    };
    obs::progress(&format!(
        "  append {:.3} us (off {:.4} us); {} appended, {} queued, {} overwritten",
        r.record_us, r.record_off_us, r.appended, r.queued, r.overwritten
    ));
    // The ring keeps the newest records and evicts the rest.
    assert_eq!(r.appended as usize, APPENDS);
    assert_eq!(r.queued + r.overwritten, r.appended);
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    // The journal gate fires only when every size exceeds the limit: a
    // real regression in the record path is size-independent, while a
    // noise burst on a shared CI core hits one measurement at a time.
    let min_overhead = report
        .sizes
        .iter()
        .map(|s| s.journal_overhead_pct)
        .fold(f64::INFINITY, f64::min);
    if min_overhead > 10.0 {
        return Err(format!(
            "ring-journal overhead on the attribution-off path is above 10% at every size \
             (best {min_overhead:.1}%)"
        ));
    }
    for current in &report.sizes {
        let Some(baseline) = committed.sizes.iter().find(|s| s.rows == current.rows) else {
            continue;
        };
        if current.plain_ms > 2.0 * baseline.plain_ms {
            return Err(format!(
                "plain predict at {} rows took {:.1} ms, more than 2x the committed {:.1} ms",
                current.rows, current.plain_ms, baseline.plain_ms
            ));
        }
        if current.attributed_ms > 2.0 * baseline.attributed_ms {
            return Err(format!(
                "attributed predict at {} rows took {:.1} ms, more than 2x the committed \
                 {:.1} ms",
                current.rows, current.attributed_ms, baseline.attributed_ms
            ));
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    // The attribution counters only record with telemetry on; default to
    // a quiet snapshot-only format so the report always carries them.
    if !obs::enabled() {
        obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
    }
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_obs.json".into());

    obs::progress("training paper-shaped forest (250 trees, 20k rows)...");
    let (xt, yt) = dataset(20_000, 30, scale.seed);
    let mut forest = RandomForest::new(RandomForestParams {
        n_jobs: 1,
        seed: scale.seed,
        ..RandomForestParams::paper_selected()
    });
    forest
        .fit(&xt, &yt, None)
        .expect("paper-shaped forest trains on the synthetic dataset");
    let flat = forest.to_flat();
    let n_trees = forest.trees().len();

    let sizes: &[usize] = if scale.full {
        &[1_000, 100_000, 1_000_000]
    } else {
        &[1_000, 100_000]
    };
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        sizes: sizes
            .iter()
            .map(|&n| measure_size(&flat, n_trees, n, scale.seed))
            .collect(),
        journal: measure_journal(),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("obs overhead check passed against {path}"),
            Err(msg) => {
                eprintln!("obs overhead check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table_obs");
}
