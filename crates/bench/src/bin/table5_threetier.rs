//! Regenerates Table 5: baseline comparison on the three-tier web
//! application (Elgg / InnoDB / Memcache).
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table5_threetier --release [-- --full]
//! ```

use monitorless::experiments::{comparison_header, table5};
use monitorless_bench::{telemetry_report, trained_model, Scale};

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    let rows = table5::run(&model, &scale.eval_options(0x55)).expect("table 5 harness");
    println!("Table 5 — three-tier web application\n");
    println!("{}", comparison_header());
    for row in rows {
        println!("{}", row.format());
    }
    println!("\n(paper shape: CPU-style detectors and monitorless all score near 1.0;");
    println!(" MEM trails on the CPU-bound front-end)");
    telemetry_report("table5_threetier");
}
