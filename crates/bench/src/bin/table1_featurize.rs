//! Featurize-path perf snapshot: the streaming column-major feature
//! pipeline vs the legacy row-cloning stage chain, plus per-instance
//! online-push latency.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table1_featurize --release [-- --full]
//! ```
//!
//! Writes a machine-readable report to `results/BENCH_featurize.json`
//! (override with `--out <path>`). `--full` sweeps 1k/20k/100k-row
//! matrices; the default quick scale measures 1k/20k.
//!
//! The pipeline under test is fitted once on a catalog-width raw
//! series (the full host+container metric catalog — the same raw shape
//! the orchestrator feeds at runtime) with the quick grid point
//! (normalize, forest-filter, time features, products, forest-filter).
//! Each sweep size then transforms a fresh raw series of that shape
//! through both batch paths: the legacy chain
//! (`FittedPipeline::transform_batch_legacy`, which materialises the
//! full stage-D matrix row by row) and the streaming chain
//! (`transform_batch`, which fuses stages into preallocated buffers
//! and only evaluates the selected stage-D cells). The two outputs are
//! cross-checked bit-for-bit on every run, so the speedup numbers
//! always describe identical features.
//!
//! The tick section simulates a 200-instance autoscaler fleet: every
//! instance owns an `InstanceTransformer` fed one raw sample per tick.
//! Streaming `push` and the retained `push_legacy` run on twin
//! instances and are compared bit-for-bit at every tick, including
//! during warmup. A counting global allocator then asserts the
//! steady-state streaming push loop performs **zero** heap
//! allocations.
//!
//! `--check <path>` re-measures at the current scale and exits
//! non-zero if the streaming path lost its edge: wall time more than
//! 2x the committed snapshot's measurement for the same matrix size
//! (coarse — it must survive CI machine variance) or a same-run
//! speedup over the legacy chain below 1.5x.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use monitorless::features::{
    FeaturePipeline, FittedPipeline, InstanceTransformer, PipelineConfig, RawLayout,
};
use monitorless_bench::telemetry_report;
use monitorless_learn::Matrix;
use monitorless_metrics::catalog::Catalog;
use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

/// System allocator wrapper counting allocation events, so the bench
/// can prove the steady-state online push never touches the heap.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Rows per simulated instance: each group is one instance's
/// chronological series, so the 100k sweep is a 200-instance fleet.
const GROUP_LEN: usize = 500;

/// One matrix size's batch-transform measurement.
#[derive(Debug, Clone, PartialEq)]
struct SizeResult {
    rows: usize,
    raw_width: usize,
    out_width: usize,
    groups: usize,
    legacy_ms: f64,
    streaming_ms: f64,
    speedup: f64,
}

monitorless_std::json_struct!(SizeResult {
    rows,
    raw_width,
    out_width,
    groups,
    legacy_ms,
    streaming_ms,
    speedup,
});

/// Online per-instance tick latency (microseconds per push).
#[derive(Debug, Clone, PartialEq)]
struct TickResult {
    instances: usize,
    legacy_us: f64,
    streaming_us: f64,
    legacy_allocs_per_push: f64,
    streaming_allocs_per_push: f64,
}

monitorless_std::json_struct!(TickResult {
    instances,
    legacy_us,
    streaming_us,
    legacy_allocs_per_push,
    streaming_allocs_per_push,
});

/// The whole snapshot, as committed to `results/BENCH_featurize.json`.
#[derive(Debug, Clone, PartialEq)]
struct BenchReport {
    scale: String,
    seed: u64,
    sizes: Vec<SizeResult>,
    tick: TickResult,
}

monitorless_std::json_struct!(BenchReport {
    scale,
    seed,
    sizes,
    tick,
});

/// Synthetic catalog-width raw series: `rows` samples split into
/// `GROUP_LEN`-row instance groups, each column drawn from a
/// metric-shaped family (utilization gauges, quantized percentages,
/// integer counter deltas, coarse levels, continuous latencies) with a
/// slow per-group ramp so the filtering forests have signal to keep.
fn raw_series(rows: usize, raw_width: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * raw_width);
    let mut y = Vec::with_capacity(rows);
    let mut groups = Vec::with_capacity(rows);
    let mut row = vec![0.0; raw_width];
    for i in 0..rows {
        let g = (i / GROUP_LEN) as u32;
        let t = i % GROUP_LEN;
        // Per-group utilization ramp in [0, 1] plus noise, so labels
        // correlate with a band of columns the way saturation does.
        let util = (t as f64 / GROUP_LEN as f64 + rng.gen::<f64>() * 0.2).min(1.0);
        for (c, v) in row.iter_mut().enumerate() {
            *v = match c % 5 {
                0 => util * (0.5 + 0.5 * rng.gen::<f64>()),
                1 => (util * 1000.0 * rng.gen::<f64>()).floor() / 10.0,
                2 => (rng.gen::<f64>() * 256.0).floor() * (1.0 + util),
                3 => (rng.gen::<f64>() * 8.0).floor(),
                _ => rng.gen::<f64>() * (1.0 + 3.0 * util),
            };
        }
        y.push(u8::from(util > 0.8));
        groups.push(g);
        data.extend_from_slice(&row);
    }
    (Matrix::from_vec(rows, raw_width, data), y, groups)
}

/// Milliseconds of one run of `f`.
fn time_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1000.0, out)
}

fn assert_bit_identical(streaming: &Matrix, legacy: &Matrix, rows: usize) {
    assert_eq!(streaming.rows(), legacy.rows());
    assert_eq!(streaming.cols(), legacy.cols());
    for (i, (s, l)) in streaming
        .as_slice()
        .iter()
        .zip(legacy.as_slice())
        .enumerate()
    {
        assert_eq!(
            s.to_bits(),
            l.to_bits(),
            "streaming and legacy features diverged at cell {i} of the {rows}-row sweep \
             ({s} vs {l})",
        );
    }
}

fn measure_size(fitted: &FittedPipeline, raw_width: usize, rows: usize, seed: u64) -> SizeResult {
    let (x, _, groups) = raw_series(rows, raw_width, seed.wrapping_add(rows as u64));
    let n_groups = groups.last().map_or(0, |g| *g as usize + 1);
    obs::progress(&format!("batch transform, {rows} x {raw_width} raw ({n_groups} groups)..."));

    // Interleave the timed runs rep by rep: on a shared core a noise
    // burst then hits the streaming and legacy samples alike and mostly
    // cancels out of the ratio, where back-to-back rep groups would let
    // one side absorb the whole burst.
    let reps = 3;
    let mut streaming_ms = f64::INFINITY;
    let mut legacy_ms = f64::INFINITY;
    let mut streaming_out = None;
    let mut legacy_out = None;
    for _ in 0..reps {
        let (ms, out) = time_ms(|| fitted.transform_batch(&x, &groups).expect("transform"));
        streaming_ms = streaming_ms.min(ms);
        streaming_out = Some(out);
        let (ms, out) = time_ms(|| {
            fitted
                .transform_batch_legacy(&x, &groups)
                .expect("transform")
        });
        legacy_ms = legacy_ms.min(ms);
        legacy_out = Some(out);
    }

    // The speedup claim only holds if both chains produced identical
    // features.
    let streaming_out = streaming_out.expect("at least one rep");
    let legacy_out = legacy_out.expect("at least one rep");
    assert_bit_identical(&streaming_out, &legacy_out, rows);

    let r = SizeResult {
        rows,
        raw_width,
        out_width: streaming_out.cols(),
        groups: n_groups,
        legacy_ms,
        streaming_ms,
        speedup: legacy_ms / streaming_ms,
    };
    obs::progress(&format!(
        "  legacy {:.1} ms, streaming {:.1} ms ({:.2}x; {} output features)",
        r.legacy_ms, r.streaming_ms, r.speedup, r.out_width
    ));
    r
}

fn measure_tick(fitted: &Arc<FittedPipeline>, raw_width: usize, seed: u64) -> TickResult {
    let instances = 200;
    let warm_ticks = fitted.config().time_features as usize * 24 + 8;
    let timed_ticks = 64;
    let (x, _, _) = raw_series(warm_ticks + timed_ticks + 64, raw_width, seed.wrapping_add(99));

    obs::progress(&format!("online tick loop, {instances} instances x {timed_ticks} ticks..."));
    let mut streaming: Vec<InstanceTransformer> = (0..instances)
        .map(|_| InstanceTransformer::new(Arc::clone(fitted)))
        .collect();
    let mut legacy: Vec<InstanceTransformer> = (0..instances)
        .map(|_| InstanceTransformer::new(Arc::clone(fitted)))
        .collect();

    // Correctness pass, covering warmup: every instance's streaming
    // push must match its legacy twin bit-for-bit at every tick. Each
    // instance reads the shared series at its own offset so the fleet
    // is not in lockstep.
    for t in 0..warm_ticks {
        for (i, (s, l)) in streaming.iter_mut().zip(&mut legacy).enumerate() {
            let raw = x.row((t + i) % x.rows());
            let sv = s.push(raw).expect("streaming push");
            let lv = l.push_legacy(raw).expect("legacy push");
            assert_eq!(sv.len(), lv.len());
            for (k, (a, b)) in sv.iter().zip(&lv).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "online streaming and legacy features diverged at tick {t}, instance {i}, \
                     feature {k} ({a} vs {b})",
                );
            }
        }
    }

    // Timed streaming pass. The windows are full, every scratch buffer
    // is at capacity: the loop must not allocate at all.
    let mut sink = 0.0;
    let alloc0 = ALLOC_EVENTS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for t in 0..timed_ticks {
        for (i, s) in streaming.iter_mut().enumerate() {
            let out = s
                .push(x.row((warm_ticks + t + i) % x.rows()))
                .expect("streaming push");
            sink += out.last().copied().unwrap_or(0.0);
        }
    }
    let pushes = (timed_ticks * instances) as f64;
    let streaming_us = t0.elapsed().as_secs_f64() * 1e6 / pushes;
    let streaming_allocs = (ALLOC_EVENTS.load(Ordering::Relaxed) - alloc0) as f64 / pushes;
    assert!(sink.is_finite());
    assert!(
        streaming_allocs == 0.0,
        "steady-state streaming push allocated ({streaming_allocs} events/push); the online \
         transformer hot loop must be allocation-free"
    );

    // Timed legacy pass on the twin fleet, same tick schedule.
    let mut sink = 0.0;
    let alloc0 = ALLOC_EVENTS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for t in 0..timed_ticks {
        for (i, l) in legacy.iter_mut().enumerate() {
            let out = l
                .push_legacy(x.row((warm_ticks + t + i) % x.rows()))
                .expect("legacy push");
            sink += out.last().copied().unwrap_or(0.0);
        }
    }
    let legacy_us = t0.elapsed().as_secs_f64() * 1e6 / pushes;
    let legacy_allocs = (ALLOC_EVENTS.load(Ordering::Relaxed) - alloc0) as f64 / pushes;
    assert!(sink.is_finite());

    let r = TickResult {
        instances,
        legacy_us,
        streaming_us,
        legacy_allocs_per_push: legacy_allocs,
        streaming_allocs_per_push: streaming_allocs,
    };
    obs::progress(&format!(
        "  legacy {:.1} us/push ({:.0} allocs), streaming {:.1} us/push ({:.0} allocs)",
        r.legacy_us, r.legacy_allocs_per_push, r.streaming_us, r.streaming_allocs_per_push
    ));
    r
}

fn check(report: &BenchReport, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let committed: BenchReport = monitorless_std::json::from_str(&text)
        .map_err(|e| format!("cannot parse {committed_path}: {e}"))?;
    for current in &report.sizes {
        let Some(baseline) = committed.sizes.iter().find(|s| s.rows == current.rows) else {
            continue;
        };
        if current.streaming_ms > 2.0 * baseline.streaming_ms {
            return Err(format!(
                "streaming transform at {} rows took {:.1} ms, more than 2x the committed \
                 {:.1} ms",
                current.rows, current.streaming_ms, baseline.streaming_ms
            ));
        }
        if current.speedup < 1.5 {
            return Err(format!(
                "streaming transform is only {:.2}x faster than legacy at {} rows \
                 (need >= 1.5x)",
                current.speedup, current.rows
            ));
        }
    }
    Ok(())
}

fn main() {
    let scale = monitorless_bench::Scale::from_args();
    // The pipeline counters and worker-utilization gauge only record
    // with telemetry on; default to a quiet snapshot-only format so the
    // report always carries them.
    if !obs::enabled() {
        obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
    }
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = arg_value("--check");
    let out_flag = arg_value("--out");
    let out_path = out_flag
        .clone()
        .unwrap_or_else(|| "results/BENCH_featurize.json".into());

    // One fitted pipeline serves every sweep size; fitting cost is not
    // what this bench measures. The raw shape is the real catalog.
    let layout = RawLayout::from_catalog(&Catalog::standard()).expect("standard catalog layout");
    let raw_width = layout.raw_len();
    obs::progress(&format!(
        "fitting quick pipeline on 2k x {raw_width} catalog-width raw series..."
    ));
    let (xt, yt, gt) = raw_series(2_000, raw_width, scale.seed);
    let (fitted, _) = FeaturePipeline::new(PipelineConfig {
        seed: scale.seed,
        ..PipelineConfig::quick()
    })
    .fit_transform(&xt, &yt, &gt, layout)
    .expect("quick pipeline fits on the synthetic series");
    let fitted = Arc::new(fitted);

    let sizes: &[usize] = if scale.full {
        &[1_000, 20_000, 100_000]
    } else {
        &[1_000, 20_000]
    };
    let report = BenchReport {
        scale: if scale.full {
            "full".into()
        } else {
            "quick".into()
        },
        seed: scale.seed,
        sizes: sizes
            .iter()
            .map(|&n| measure_size(&fitted, raw_width, n, scale.seed))
            .collect(),
        tick: measure_tick(&fitted, raw_width, scale.seed),
    };

    if let Some(path) = check_path {
        // Only write the fresh measurement when the caller asked for it
        // explicitly — never clobber the committed baseline from a
        // check run.
        if out_flag.is_some() {
            let json = monitorless_std::json::to_string(&report);
            std::fs::write(&out_path, json + "\n").expect("write report");
        }
        match check(&report, &path) {
            Ok(()) => println!("perf check passed against {path}"),
            Err(msg) => {
                eprintln!("perf check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let json = monitorless_std::json::to_string(&report);
        std::fs::write(&out_path, json.clone() + "\n").expect("write report");
        println!("{json}");
        println!("report written to {out_path}");
    }
    telemetry_report("table1_featurize");
}
