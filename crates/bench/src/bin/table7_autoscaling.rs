//! Regenerates Table 7: autoscaling comparison — average provisioning
//! vs SLO violations for seven policies on the TeaStore trace.
//!
//! ```sh
//! cargo run -p monitorless-bench --bin table7_autoscaling --release [-- --full]
//! ```

use monitorless::autoscale::AutoscaleOptions;
use monitorless::experiments::scenario::{eval_workload, EvalApp};
use monitorless::experiments::table7::{self, Table7Options};
use monitorless_bench::{telemetry_report, trained_model, Scale};
use monitorless_obs as obs;

fn main() {
    let scale = Scale::from_args();
    let model = trained_model(&scale);
    let duration = if scale.full { 7000 } else { 600 };
    let opts = Table7Options {
        autoscale: AutoscaleOptions {
            duration,
            replica_lifespan: 120,
            rt_slo_ms: 750.0,
            background_rps: 80.0,
            seed: scale.seed ^ 0x77,
        },
        eval: {
            let mut e = scale.eval_options(0x77);
            e.duration = duration;
            e
        },
    };
    let profile = eval_workload(EvalApp::TeaStore, duration, scale.seed ^ 0x77);
    obs::progress(&format!("running 7 autoscaling policies over a {duration}s trace..."));
    let rows = table7::run(&model, profile.as_ref(), &opts).expect("table 7 harness");
    println!("Table 7 — autoscaling on the TeaStore trace\n");
    print!("{}", table7::format(&rows));
    println!("\n(paper shape: No Scaling worst by far; RT-based optimal best;");
    println!(" monitorless close to optimal at similar provisioning; OR/MEM");
    println!(" overprovision heavily)");
    telemetry_report("table7_autoscaling");
}
