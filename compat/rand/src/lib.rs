//! A stand-in for the subset of the `rand` 0.8 API this workspace can
//! touch through the `ext` feature of `monitorless-std`.
//!
//! The workspace's own code generates randomness through
//! `monitorless_std::rng`; this package exists so that `rand` as a
//! *declared dependency* resolves offline via `[patch.crates-io]`. It
//! deliberately reimplements xoshiro256++ rather than depending on
//! `monitorless-std`, keeping every `compat/` package standalone.
//! Deleting the patch table in the workspace manifest swaps in the real
//! crate with no code changes.

/// Uniform value generation (mirrors `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seeding from integers (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce (mirrors `rand::distributions::Standard`
/// coverage for the types the workspace draws).
pub trait Standard {
    /// Draws one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

fn sample_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n == 1 {
        return 0;
    }
    let mask = u64::MAX >> (n - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait UniformRange {
    /// The element type.
    type Output;
    /// Draws one uniform value.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($ty:ty),+) => {$(
        impl UniformRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $ty)
            }
        }
    )+};
}

int_range!(u32, u64, usize, i32, i64);

macro_rules! float_range {
    ($($ty:ty),+) => {$(
        impl UniformRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let u = ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as $ty;
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

float_range!(f32, f64);

/// Generator types (mirrors `rand::rngs`).
pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng` (xoshiro256++ here, not
    /// ChaCha12 — sequences differ from the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffle and choose on slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::sample_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_enough() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
        let mean: f64 = (0..4000).map(|_| a.gen::<f64>()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05);
        assert!((0..10).contains(&a.gen_range(0..10)));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut a);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut a).is_some());
    }
}
