//! A miniature property-testing framework with the `proptest` 1.x API
//! surface this workspace's test suites use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and
//! tuple strategies, [`collection::vec`], `prop_map`/`prop_flat_map`
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs and
//!   the run's RNG seed instead of a minimised counterexample.
//! - **Deterministic by default.** Cases derive from a fixed seed
//!   (override with `PROPTEST_RNG_SEED`); case count defaults to 64
//!   (override with `PROPTEST_CASES` or `ProptestConfig::with_cases`).
//!
//! Deleting the `[patch.crates-io]` table in the workspace manifest
//! swaps in the real crate with no changes to the test files.

pub mod strategy;

pub mod collection;

/// Configuration and case outcome types.
pub mod test_runner {
    /// Runner configuration (mirrors the fields of
    /// `proptest::test_runner::Config` this workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// The deterministic generator driving a test run (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from an explicit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Unbiased uniform `u64` in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample from an empty range");
            if n == 1 {
                return 0;
            }
            let mask = u64::MAX >> (n - 1).leading_zeros();
            loop {
                let v = self.next_u64() & mask;
                if v < n {
                    return v;
                }
            }
        }
    }

    /// The seed for a test run: `PROPTEST_RNG_SEED` if set, otherwise a
    /// fixed constant so CI runs are reproducible.
    pub fn runner_seed() -> u64 {
        std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x6d6f_6e69_746f_7235) // "monitor5"
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// item becomes a test running `config.cases` successful cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::runner_seed();
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "{}: exceeded {} attempts (too many prop_assume! rejections)",
                    stringify!($name),
                    max_attempts,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )*
                let described = format!(
                    concat!("{{", $(" ", stringify!($arg), " = {:?}",)* " }}"),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(message)) => panic!(
                        "{} failed at case {}: {}\n  inputs: {}\n  (rerun with PROPTEST_RNG_SEED={})",
                        stringify!($name),
                        passed + 1,
                        message,
                        described,
                        seed,
                    ),
                }
            }
        }
    )*};
}

/// Asserts inside a property body; failure fails the case with the
/// generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} == {} failed: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{} != {} failed: both were {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 0.5_f64..2.5,
            n in 3usize..10,
            b in 0u8..=1,
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!(b <= 1);
        }

        #[test]
        fn vec_strategy_honours_length_and_element_ranges(
            v in crate::collection::vec(-2.0_f64..2.0, 2..50),
        ) {
            prop_assert!((2..50).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }

        #[test]
        fn flat_map_links_sizes(
            v in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0_f64..1.0, r * c)
                    .prop_map(move |data| (r, c, data))
            }),
        ) {
            let (r, c, data) = v;
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn assume_retries_instead_of_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(n in 0u32..10) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("inputs"), "{message}");
        assert!(message.contains("PROPTEST_RNG_SEED"), "{message}");
    }
}
