//! Value-generation strategies: the [`Strategy`] trait, numeric range
//! strategies, tuple strategies, [`Just`], and the `prop_map` /
//! `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree and no shrinking:
/// `generate` draws one value directly from the runner RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// A strategy that feeds each generated value to `f` and draws
    /// from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.source.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_f64() as $ty;
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let unit = rng.next_f64() as $ty;
                (start + unit * (end - start)).clamp(start, end)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
