//! A stand-in for the subset of `crossbeam` 0.8 this workspace can
//! touch through the `ext` feature of `monitorless-std`:
//! `crossbeam::channel` (bounded/unbounded MPSC) and
//! `crossbeam::thread::scope`.
//!
//! Built on std channels and scoped threads. Deleting the
//! `[patch.crates-io]` table in the workspace manifest swaps in the
//! real crate with no code changes.

/// MPSC channels (mirrors `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Creates a channel with a bounded buffer.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    #[derive(Debug)]
    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half; cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded buffer is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiver disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once senders are gone and the buffer
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a buffered value without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a value arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// The receiver disconnected; the unsent value is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// The value that could not be sent.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    /// All senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No value buffered right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }
}

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// Runs `f` with a scope handle; threads spawned on it are joined
    /// before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if any spawned thread (or `f`)
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(Scope<'_, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(Scope { inner: s }))))
    }

    /// Handle for spawning scoped threads (mirrors
    /// `crossbeam::thread::Scope`, passed by value so `|_|` closures
    /// work the same).
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope
        /// handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_delivers_and_scope_joins() {
        let (tx, rx) = super::channel::bounded(2);
        let total = super::thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(total, 45);
    }

    #[test]
    fn scope_reports_child_panics() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child dies"));
        });
        assert!(result.is_err());
    }
}
