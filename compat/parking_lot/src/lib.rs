//! A stand-in for the subset of `parking_lot` 0.12 this workspace can
//! touch through the `ext` feature of `monitorless-std`: `Mutex` and
//! `RwLock` whose lock methods return guards directly (no poisoning).
//!
//! Built on std locks with poison transparently ignored. Deleting the
//! `[patch.crates-io]` table in the workspace manifest swaps in the
//! real crate with no code changes.

use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_round_trip_values() {
        let m = Mutex::new(3u8);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 4);
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
