//! A miniature benchmark harness with the `criterion` 0.5 API surface
//! this workspace's bench suites use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from the real crate, by design: no statistical analysis,
//! HTML reports, or saved baselines. Each benchmark is calibrated so a
//! sample takes a few milliseconds, then `sample_size` samples are
//! timed and a `min / median / mean` summary line is printed. Honour
//! `MONITORLESS_BENCH_SAMPLES` to shrink runs in CI smoke jobs.
//!
//! Deleting the `[patch.crates-io]` table in the workspace manifest
//! swaps in the real crate with no changes to the bench files.

use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimiser from deleting a value or
/// the computation feeding it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes its setup batches. The shim runs setup
/// once per iteration regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batch many per allocation.
    SmallInput,
    /// Setup output is large; batch few per allocation.
    LargeInput,
    /// Setup output is huge; one per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; its `iter*` methods time the routine.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the timed samples, filled by `iter*`.
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first calibrating how many iterations make up
    /// one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one batch takes
        // at least ~2ms, so short routines get a stable per-iter time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.recorded.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.recorded.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("MONITORLESS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn run_benchmark(id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.recorded;
    if times.is_empty() {
        println!("{id:<48} (no measurements)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{id:<48} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        times.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: env_samples(20),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.samples, |b| f(b));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, |b| f(b, input));
        self
    }

    /// Ends the group. (The real crate finalises reports here; the
    /// shim prints as it goes, so this only marks the boundary.)
    pub fn finish(self) {}
}

/// Bundles target functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`. Harness CLI arguments from
/// `cargo bench` are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(17u64).pow(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("push", |b| {
            b.iter_batched(Vec::new, |mut v: Vec<u8>| v.push(1), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::from_parameter("n=4"), &4u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    criterion_group!(benches, targets);

    #[test]
    fn harness_runs_all_benchmark_shapes() {
        std::env::set_var("MONITORLESS_BENCH_SAMPLES", "3");
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fit", 42).to_string(), "fit/42");
        assert_eq!(BenchmarkId::from_parameter("base").to_string(), "base");
    }
}
