//! Property suite for the one-pass fleet serving tick (ISSUE 7).
//!
//! `Orchestrator::step` gathers the whole fleet into one feature
//! matrix, scores it with one blocked ensemble pass and fans the
//! results back out; `Orchestrator::step_legacy` is the retained
//! per-instance reference. This suite pins the equivalence contract:
//!
//! 1. **Bit-identical predictions** — probabilities and thresholded
//!    decisions match the legacy path bit for bit, across fleet sizes
//!    1 / 7 / 64 / 1000 and `n_jobs` ∈ {1, 4}.
//! 2. **Scale-out / scale-in** — the gather matrix grows and shrinks
//!    mid-episode without disturbing surviving instances' windows.
//! 3. **Observability equivalence** — under ring tracing, both paths
//!    journal the same record sequence (names, fields, labels) and the
//!    same drift-alert set; drift detector state ends identical.

use std::sync::{Arc, Mutex, OnceLock};

use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::orchestrator::{InstancePrediction, Orchestrator};
use monitorless::training::{generate_training_data, TrainingOptions};
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::{InstanceId, NodeId, Observation};
use monitorless_obs as obs;

/// Serializes tests that flip process-global telemetry state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One quick model shared by every test (training dominates runtime).
fn model() -> Arc<MonitorlessModel> {
    static MODEL: OnceLock<Arc<MonitorlessModel>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 7,
            n_jobs: 1,
        })
        .unwrap();
        Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap())
    }))
}

/// Deterministic catalog-width observations for one tick: `n`
/// instances spread over up to 3 nodes, metric values varying by
/// instance, metric index and tick so windows evolve.
fn observations(n: usize, t: u64) -> Vec<Observation> {
    let catalog = Catalog::standard();
    let nodes = n.clamp(1, 3);
    let mut out: Vec<Observation> = (0..nodes)
        .map(|node| Observation {
            node: NodeId(node as u32),
            time: t,
            host: (0..catalog.host_len())
                .map(|m| value(node as u64, m as u64, t))
                .collect(),
            containers: Vec::new(),
        })
        .collect();
    for i in 0..n {
        let node = i % nodes;
        let container = (0..catalog.container_len())
            .map(|m| value(1000 + i as u64, m as u64, t))
            .collect();
        out[node].containers.push((InstanceId(i as u32), container));
    }
    out
}

/// Bounded deterministic metric value (hash-mixed, no global RNG).
fn value(entity: u64, metric: u64, t: u64) -> f64 {
    let mut h = entity
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(metric.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(t.wrapping_mul(0x94d0_49bb_1331_11eb));
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 27;
    (h % 10_000) as f64 / 100.0
}

fn assert_ticks_equal(tick: u64, batched: &[InstancePrediction], legacy: &[InstancePrediction]) {
    assert_eq!(batched.len(), legacy.len(), "tick {tick}: prediction count");
    for (b, l) in batched.iter().zip(legacy) {
        assert_eq!(b.instance, l.instance, "tick {tick}: instance order");
        assert_eq!(
            b.probability.to_bits(),
            l.probability.to_bits(),
            "tick {tick} {}: probability {} != legacy {}",
            b.instance,
            b.probability,
            l.probability
        );
        assert_eq!(b.saturated, l.saturated, "tick {tick} {}: decision", b.instance);
    }
}

#[test]
fn batched_tick_matches_legacy_across_fleet_sizes() {
    let _guard = OBS_LOCK.lock().unwrap();
    let model = model();
    for n in [1usize, 7, 64, 1000] {
        let ticks = if n >= 1000 { 6 } else { 20 };
        for n_jobs in [1usize, 4] {
            let mut batched = Orchestrator::new(Arc::clone(&model));
            batched.set_n_jobs(n_jobs);
            let mut legacy = Orchestrator::new(Arc::clone(&model));
            for t in 0..ticks {
                let observed = observations(n, t);
                let b = batched.step(&observed).unwrap().to_vec();
                let l = legacy.step_legacy(&observed).unwrap().to_vec();
                assert_eq!(b.len(), n, "fleet {n}: one prediction per instance");
                assert_ticks_equal(t, &b, &l);
            }
            // Drift detectors consumed identical rows → identical state.
            match (batched.drift(), legacy.drift()) {
                (Some(db), Some(dl)) => {
                    assert_eq!(db.scores(), dl.scores(), "fleet {n}: drift scores")
                }
                (None, None) => {}
                _ => panic!("fleet {n}: drift detectors must agree on presence"),
            }
        }
    }
}

#[test]
fn scale_out_and_in_keep_surviving_windows_identical() {
    let _guard = OBS_LOCK.lock().unwrap();
    let model = model();
    let mut batched = Orchestrator::new(Arc::clone(&model));
    let mut legacy = Orchestrator::new(Arc::clone(&model));
    // Fleet size per tick: warm up at 4, burst to 9 (gather matrix
    // grows), shrink to 3 (scale-in drops windows), regrow to 6.
    let sizes = [4usize, 4, 4, 9, 9, 3, 3, 6, 6, 6];
    for (t, &n) in sizes.iter().enumerate() {
        let observed = observations(n, t as u64);
        let b = batched.step(&observed).unwrap().to_vec();
        let l = legacy.step_legacy(&observed).unwrap().to_vec();
        assert_ticks_equal(t as u64, &b, &l);
        assert_eq!(batched.tracked_instances(), n);
        assert_eq!(legacy.tracked_instances(), n);
    }
}

#[test]
fn journal_sequence_matches_legacy_under_ring_tracing() {
    let _guard = OBS_LOCK.lock().unwrap();
    let model = model();
    obs::init(&obs::TelemetryConfig::with_format(obs::format()).with_trace(obs::TraceMode::Ring));
    let _ = obs::drain();
    let run = |use_legacy: bool| {
        let mut orch = Orchestrator::new(Arc::clone(&model));
        let mut records = Vec::new();
        for t in 0..12u64 {
            let observed = observations(7, t);
            if use_legacy {
                orch.step_legacy(&observed).unwrap();
            } else {
                orch.step(&observed).unwrap();
            }
            let trace = orch.last_trace();
            assert_ne!(trace, 0, "tracing mints a nonzero id per tick");
            for r in obs::drain() {
                // The minted trace id differs between the two runs by
                // construction; the causal chain must not: every tick
                // record carries that tick's single id.
                assert_eq!(r.trace, trace, "record outside its tick's trace");
                records.push((r.name, r.fields.clone(), r.labels.clone()));
            }
        }
        records
    };
    let batched = run(false);
    let legacy = run(true);
    obs::init(&obs::TelemetryConfig::with_format(obs::format()).with_trace(obs::TraceMode::Off));
    let _ = obs::drain();
    assert!(
        batched
            .iter()
            .any(|(name, _, _)| *name == "orchestrator.predict"),
        "ring must hold prediction records"
    );
    assert_eq!(batched.len(), legacy.len(), "journal record count");
    for (b, l) in batched.iter().zip(&legacy) {
        assert_eq!(b, l, "journal records must match name, fields and labels");
    }
}
