//! End-to-end determinism: the whole sim → dataset → feature pipeline →
//! forest chain must be bit-for-bit reproducible for a fixed seed.
//!
//! This is the property the offline-first refactor leans on: with the
//! in-tree RNG (no external `rand`), two identical runs must produce
//! identical training data and byte-identical serialized models.

use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};

fn options() -> TrainingOptions {
    TrainingOptions {
        run_seconds: 30,
        ramp_seconds: 100,
        seed: 2026,
        n_jobs: 1,
    }
}

#[test]
fn same_seed_is_bit_for_bit_reproducible() {
    let a = generate_training_data(&options()).unwrap();
    let b = generate_training_data(&options()).unwrap();

    // The simulated datasets match exactly — not approximately.
    assert_eq!(a.dataset.x(), b.dataset.x(), "raw metric matrices differ");
    assert_eq!(a.dataset.y(), b.dataset.y(), "labels differ");
    assert_eq!(a.dataset.groups(), b.dataset.groups(), "groups differ");
    assert_eq!(a.thresholds, b.thresholds, "calibrated thresholds differ");

    // Training is deterministic too: the serialized models (pipeline
    // state + every tree) are byte-identical.
    let opts = ModelOptions::quick();
    let model_a = MonitorlessModel::train(&a, &opts).unwrap();
    let model_b = MonitorlessModel::train(&b, &opts).unwrap();
    let json_a = monitorless_std::json::to_string(&model_a);
    let json_b = monitorless_std::json::to_string(&model_b);
    assert!(json_a == json_b, "serialized models differ");

    // And so are the predictions they emit.
    let pa = model_a
        .predict_proba_batch(a.dataset.x(), a.dataset.groups())
        .unwrap();
    let pb = model_b
        .predict_proba_batch(b.dataset.x(), b.dataset.groups())
        .unwrap();
    assert_eq!(pa, pb, "predicted probabilities differ");
}

#[test]
fn flat_predict_path_matches_legacy_and_survives_serialization() {
    let data = generate_training_data(&options()).unwrap();
    let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();

    // The batched entry point runs on the flat table; the forest's
    // recursive walk is the independent reference. Same transformed
    // features, bit-identical scores.
    let x = model
        .pipeline()
        .transform_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    let flat = model.flat().predict_proba(&x, 1);
    let legacy = model.forest().predict_proba_legacy(&x);
    assert_eq!(flat.len(), legacy.len());
    for (i, (a, b)) in flat.iter().zip(&legacy).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "row {i}: flat {a} vs legacy {b}");
    }

    // A save/load round trip recompiles the flat table from the
    // serialized forest; scores must survive bit-for-bit, and the
    // single-row tick entry must agree with the batch path.
    let path = std::env::temp_dir().join("monitorless_determinism_flat.json");
    model.save(&path).unwrap();
    let reloaded = MonitorlessModel::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let reloaded_scores = reloaded
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    let original_scores = model
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    for (i, (a, b)) in original_scores.iter().zip(&reloaded_scores).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "row {i}: original {a} vs reloaded {b}");
    }
    for (row, &want) in x.iter_rows().zip(&flat) {
        let (p, label) = reloaded.predict_features(row);
        assert_eq!(p.to_bits(), want.to_bits(), "tick path diverges from batch");
        assert_eq!(label, u8::from(p >= reloaded.threshold()));
    }
}

#[test]
fn different_seeds_produce_different_data() {
    let a = generate_training_data(&options()).unwrap();
    let b = generate_training_data(&TrainingOptions {
        seed: 2027,
        n_jobs: 1,
        ..options()
    })
    .unwrap();
    assert_ne!(a.dataset.x(), b.dataset.x(), "seed must matter");
}
