//! The paper's headline claim: one model trained on Solr/Memcache/
//! Cassandra transfers to applications it has never seen.

use std::sync::Arc;

use monitorless::experiments::scenario::{
    comparison_rows, run_eval_scenario, EvalApp, EvalOptions, EVAL_LAG,
};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};
use monitorless_learn::metrics::lagged_confusion;

fn trained_model(seed: u64) -> Arc<MonitorlessModel> {
    let data = generate_training_data(&TrainingOptions {
        run_seconds: 60,
        ramp_seconds: 150,
        seed,
        n_jobs: 1,
    })
    .unwrap();
    Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap())
}

#[test]
fn transfers_to_the_unseen_three_tier_application() {
    let model = trained_model(101);
    let run = run_eval_scenario(
        EvalApp::ThreeTier,
        Some(&model),
        &EvalOptions {
            duration: 300,
            ramp_seconds: 200,
            seed: 103,
            record_raw: false,
        },
    )
    .unwrap();
    let pred = run.monitorless.as_ref().unwrap();
    let cm = lagged_confusion(&run.ground_truth, pred, EVAL_LAG);
    // The paper reports F1₂ = 0.997 at testbed scale; at laptop scale we
    // require the shape: clearly better than chance, with high recall
    // (the 0.4 threshold is chosen to avoid false negatives).
    assert!(cm.f1() > 0.6, "three-tier F1_2 = {} ({cm})", cm.f1());
    assert!(cm.recall() > 0.6, "recall = {}", cm.recall());
}

#[test]
fn monitorless_is_comparable_to_optimally_tuned_baselines() {
    let model = trained_model(107);
    let run = run_eval_scenario(
        EvalApp::ThreeTier,
        Some(&model),
        &EvalOptions {
            duration: 300,
            ramp_seconds: 200,
            seed: 109,
            record_raw: false,
        },
    )
    .unwrap();
    let rows = comparison_rows(&run);
    let f1 = |name: &str| {
        rows.iter()
            .find(|r| r.algorithm.starts_with(name))
            .map(|r| r.confusion.f1())
            .unwrap()
    };
    let table = rows
        .iter()
        .map(|r| r.format())
        .collect::<Vec<_>>()
        .join("\n");
    // Shape of Table 5: CPU-style detectors do well on the CPU-bound
    // front-end; monitorless is close despite never being tuned.
    assert!(f1("monitorless") > f1("CPU (") - 0.25, "monitorless not competitive:\n{table}");
    // MEM alone must be the weakest detector on a CPU-bound app, as in
    // the paper's Table 5 where MEM trails CPU.
    assert!(f1("MEM (") <= f1("CPU (") + 1e-9, "MEM beat CPU on a CPU-bound app:\n{table}");
}

#[test]
fn teastore_accuracy_is_high_with_rare_saturation() {
    let model = trained_model(113);
    let run = run_eval_scenario(
        EvalApp::TeaStore,
        Some(&model),
        &EvalOptions {
            duration: 400,
            ramp_seconds: 200,
            seed: 115,
            record_raw: false,
        },
    )
    .unwrap();
    let pred = run.monitorless.as_ref().unwrap();
    let cm = lagged_confusion(&run.ground_truth, pred, EVAL_LAG);
    // Table 6 shape: accuracy ~0.977 with saturation rare. We require
    // accuracy well above the trivial all-positive baseline.
    let pos_rate =
        run.ground_truth.iter().map(|&v| v as usize).sum::<usize>() as f64 / pred.len() as f64;
    assert!(pos_rate < 0.5, "saturation should be the minority class");
    assert!(cm.accuracy() > 0.7, "TeaStore Acc_2 = {} ({cm})", cm.accuracy());
}

#[test]
fn per_service_predictions_identify_the_bottleneck_services() {
    let model = trained_model(117);
    let run = run_eval_scenario(
        EvalApp::TeaStore,
        Some(&model),
        &EvalOptions {
            duration: 400,
            ramp_seconds: 200,
            seed: 119,
            record_raw: false,
        },
    )
    .unwrap();
    let per_service = run.per_service.as_ref().unwrap();
    let positives = |name: &str| {
        per_service
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, p)| p.iter().map(|&v| v as usize).sum::<usize>())
            .unwrap()
    };
    // The paper observes most TPs on Auth, Web-UI and Recommender; the
    // registry (fanout 0.1) should be quiet.
    let loud = positives("auth") + positives("webui") + positives("recommender");
    let quiet = positives("registry");
    assert!(
        loud >= quiet,
        "bottleneck services should fire at least as often as the registry \
         (loud={loud}, quiet={quiet})"
    );
}
