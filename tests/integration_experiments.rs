//! Smoke tests for every table/figure harness at reduced scale — the
//! same code paths the bench binaries run at paper scale.

use std::sync::Arc;

use monitorless::experiments::scenario::EvalOptions;
use monitorless::experiments::table2::{Algorithm, GridScale};
use monitorless::experiments::{fig2, fig3, table1, table2, table4, table6};
use monitorless::features::{FeaturePipeline, PipelineConfig};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};

fn quick_training(seed: u64) -> monitorless::training::TrainingData {
    generate_training_data(&TrainingOptions {
        run_seconds: 40,
        ramp_seconds: 120,
        seed,
        n_jobs: 1,
    })
    .unwrap()
}

#[test]
fn fig2_csv_and_knee() {
    let data = fig2::run(&fig2::Fig2Options::default()).unwrap();
    assert!(data.knee.x > 300.0 && data.knee.x < 1000.0);
    assert!(data.to_csv().lines().count() > 50);
}

#[test]
fn table1_catalog_regenerates() {
    let rows = table1::run(&TrainingOptions {
        run_seconds: 30,
        ramp_seconds: 100,
        seed: 301,
        n_jobs: 1,
    })
    .unwrap();
    assert_eq!(rows.len(), 25);
    assert!(
        table1::format(&rows).contains("Bottleneck") || table1::format(&rows).contains("Observed")
    );
}

#[test]
fn table2_grid_search_runs_on_real_features() {
    let data = quick_training(303);
    let (_, x) = FeaturePipeline::new(PipelineConfig::quick())
        .fit_transform(
            data.dataset.x(),
            data.dataset.y(),
            data.dataset.groups(),
            data.layout.clone(),
        )
        .unwrap();
    let rows = table2::run(
        &x,
        data.dataset.y(),
        data.dataset.groups(),
        &[Algorithm::RandomForest],
        GridScale::Quick,
    )
    .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].best_f1 > 0.5, "CV F1 = {}", rows[0].best_f1);
}

#[test]
fn table4_table6_fig3_share_one_model() {
    let data = quick_training(307);
    let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());

    let importances = table4::run(&model, 30);
    assert!(!importances.is_empty());

    let (rows, run) = table6::run(
        &model,
        &EvalOptions {
            duration: 200,
            ramp_seconds: 150,
            seed: 309,
            record_raw: false,
        },
    )
    .unwrap();
    assert_eq!(rows.len(), 5);

    let fig = fig3::run(&run).unwrap();
    assert_eq!(fig.services.len(), 7);
    assert_eq!(fig.workload.len(), 200);
    let csv = fig.to_csv();
    assert!(csv.contains("webui"));
    assert_eq!(csv.lines().count(), 201);
}
