//! End-to-end pipeline integration: simulator → metric catalog →
//! labeling → feature pipeline → classifier, across crate boundaries.

use monitorless::features::{FeaturePipeline, PipelineConfig};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{calibrate_threshold, generate_training_data, table1, TrainingOptions};
use monitorless_learn::metrics::f1_score;
use monitorless_learn::{Classifier, RandomForest, RandomForestParams};

fn quick_opts(seed: u64) -> TrainingOptions {
    TrainingOptions {
        run_seconds: 40,
        ramp_seconds: 120,
        seed,
        n_jobs: 1,
    }
}

#[test]
fn training_data_is_reproducible_given_a_seed() {
    let a = generate_training_data(&quick_opts(42)).unwrap();
    let b = generate_training_data(&quick_opts(42)).unwrap();
    assert_eq!(a.dataset.x().as_slice(), b.dataset.x().as_slice());
    assert_eq!(a.dataset.y(), b.dataset.y());
    let c = generate_training_data(&quick_opts(43)).unwrap();
    assert_ne!(a.dataset.x().as_slice(), c.dataset.x().as_slice());
}

#[test]
fn thresholds_are_calibrated_within_traffic_ranges() {
    let opts = quick_opts(11);
    for config in table1().iter().take(8) {
        if let Some(threshold) = calibrate_threshold(config, &opts).unwrap() {
            // Υ must sit below the ramp peak (1.3 × traffic max).
            assert!(
                threshold.upsilon() <= config.traffic.max_rate() * 1.3,
                "config {}: Υ = {} above ramp peak",
                config.id,
                threshold.upsilon()
            );
            assert!(threshold.upsilon() > 0.0);
        }
    }
}

#[test]
fn pipeline_plus_forest_reaches_high_training_f1() {
    let data = generate_training_data(&quick_opts(4)).unwrap();
    let (_, x) = FeaturePipeline::new(PipelineConfig::quick())
        .fit_transform(
            data.dataset.x(),
            data.dataset.y(),
            data.dataset.groups(),
            data.layout.clone(),
        )
        .unwrap();
    let mut rf = RandomForest::new(RandomForestParams {
        n_estimators: 30,
        min_samples_leaf: 5,
        n_jobs: 4,
        ..RandomForestParams::default()
    });
    rf.fit(&x, data.dataset.y(), None).unwrap();
    let f1 = f1_score(data.dataset.y(), &rf.predict(&x));
    assert!(f1 > 0.9, "training F1 = {f1}");
}

#[test]
fn model_roundtrips_through_json() {
    let data = generate_training_data(&quick_opts(5)).unwrap();
    let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
    let path = std::env::temp_dir().join("monitorless_integration_model.json");
    model.save(&path).unwrap();
    let restored = MonitorlessModel::load(&path).unwrap();
    let a = model
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    let b = restored
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    assert_eq!(a, b);
    std::fs::remove_file(path).ok();
}

#[test]
fn pipeline_without_products_or_time_features_still_works() {
    // The ablation configurations must remain trainable.
    let data = generate_training_data(&quick_opts(6)).unwrap();
    for (products, time_features) in [(false, true), (true, false), (false, false)] {
        let config = PipelineConfig {
            products,
            time_features,
            ..PipelineConfig::quick()
        };
        let (fitted, x) = FeaturePipeline::new(config)
            .fit_transform(
                data.dataset.x(),
                data.dataset.y(),
                data.dataset.groups(),
                data.layout.clone(),
            )
            .unwrap();
        assert!(fitted.output_width() > 0);
        assert_eq!(x.rows(), data.dataset.len());
    }
}
