//! Bake-off harness integration: determinism, tuning ordering, model
//! gating, and true scale-to-zero, all through the public
//! `autoscale::{backend, bakeoff}` API.

use std::sync::Arc;

use monitorless::autoscale::backend::{MonitorlessScaler, ReactiveThreshold};
use monitorless::autoscale::bakeoff::{run_cell, BakeoffOptions};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};
use monitorless_workload::scenario::Scenario;

fn quick_model() -> Arc<MonitorlessModel> {
    let data = generate_training_data(&TrainingOptions {
        run_seconds: 50,
        ramp_seconds: 120,
        seed: 211,
        n_jobs: 1,
    })
    .unwrap();
    Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap())
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let model = quick_model();
    let opts = BakeoffOptions::standard(11);
    for scenario in Scenario::pack(11, true) {
        let mut a = MonitorlessScaler::with_threshold(model.threshold());
        let mut b = MonitorlessScaler::with_threshold(model.threshold());
        let first = run_cell(&mut a, &scenario, &model, &opts).unwrap();
        let second = run_cell(&mut b, &scenario, &model, &opts).unwrap();
        assert_eq!(
            monitorless_std::json::to_string(&first),
            monitorless_std::json::to_string(&second),
            "cell {} must be a pure function of its inputs",
            scenario.name
        );
    }
}

#[test]
fn tuned_threshold_beats_untuned_on_a_flash_crowd() {
    let model = quick_model();
    let opts = BakeoffOptions::standard(13);
    let scenario = Scenario::flash_crowd(13, true);

    // Tuned: the HPA default 70% utilization target. Untuned: waits
    // for 95% utilization before adding capacity.
    let mut tuned = ReactiveThreshold::hpa_cpu();
    let mut untuned = ReactiveThreshold::with_target(95.0);
    let good = run_cell(&mut tuned, &scenario, &model, &opts).unwrap();
    let bad = run_cell(&mut untuned, &scenario, &model, &opts).unwrap();

    assert!(
        good.slo_violation_s < bad.slo_violation_s,
        "70% target ({} s violated) must beat a 95% target ({} s)",
        good.slo_violation_s,
        bad.slo_violation_s
    );
}

#[test]
fn monitorless_never_scales_out_below_its_threshold() {
    let model = quick_model();
    let opts = BakeoffOptions::standard(17);
    let scenario = Scenario::flash_crowd(17, true);

    // An unreachable threshold means no saturation probability ever
    // crosses it, so the model path must never add capacity; only the
    // idle path may remove some (the scenario floor is 1).
    let mut gated = MonitorlessScaler::with_threshold(2.0);
    let cell = run_cell(&mut gated, &scenario, &model, &opts).unwrap();
    assert_eq!(
        cell.scale_outs, 0,
        "no scale-out may fire while every probability is below threshold"
    );
    assert_eq!(cell.peak_instances, 1, "capacity must stay at the initial replica");
}

#[test]
fn scale_to_zero_reaches_zero_between_bursts_and_comes_back() {
    let model = quick_model();
    let opts = BakeoffOptions::standard(19);
    let scenario = Scenario::scale_to_zero(19, true);

    let mut backend = MonitorlessScaler::with_threshold(model.threshold());
    let cell = run_cell(&mut backend, &scenario, &model, &opts).unwrap();
    assert_eq!(cell.min_instances, 0, "idle gaps must drain the service to zero");
    assert!(cell.peak_instances >= 2, "bursts must scale the service back out");
    assert!(cell.cold_starts > 0, "restarting from zero pays cold starts");
    assert!(cell.zero_capacity_s > 0, "cold-start bursts necessarily hit zero-capacity seconds");
}
