//! Property suite for the event-driven fleet simulator (ISSUE 8).
//!
//! The event path ([`EventSim`] over the incremental [`Cluster::step`])
//! must be **observation-bit-identical** at the 1 Hz monitoring
//! boundary to the retained dense loop
//! ([`Cluster::step_dense_legacy`]): every float in every
//! [`TickReport`] — host metric vectors, container metric vectors,
//! KPIs, container ticks — matches bit for bit. This suite pins that
//! contract:
//!
//! 1. **Random paper-shaped topologies** — multi-node clusters with
//!    1–3 multi-service applications placed at random, driven through
//!    mid-episode scale-out and scale-in.
//! 2. **Every load-profile family** — sine, noisy sine, constant,
//!    stepped, ramp, Locust, shifted/summed Locust, daily-pattern and
//!    the trace-driven profiles (bundled sample + synthesizer, both
//!    interpolations).
//! 3. **Worker independence** — `n_jobs` 1 vs 4 produce bit-identical
//!    report streams (shards share no mutable state within a tick).
//! 4. **Deterministic event order** — two identically seeded runs pop
//!    events in the same `(time, seq)` order and end in the same state.
//! 5. **Skip-idle accounting** — settled stretches between sparse
//!    monitor samples are skipped, not simulated.

use monitorless_metrics::{InstanceId, NodeId};
use monitorless_sim::{
    AppId, Cluster, ContainerLimits, EventSim, NodeSpec, ServiceProfile, ServiceRole, TickReport,
};
use monitorless_std::{Rng, StdRng};
use monitorless_workload::{
    ConstantProfile, DailyPatternProfile, LoadProfile, LocustProfile, NoisyProfile, RampProfile,
    ShiftedProfile, SineProfile, SteppedProfile, SumProfile, TraceInterp, TraceProfile,
};

/// Asserts two tick reports are bit-identical in every float.
fn assert_reports_identical(fast: &TickReport, dense: &TickReport, ctx: &str) {
    assert_eq!(fast.time, dense.time, "{ctx}");
    assert_eq!(fast.observations.len(), dense.observations.len(), "{ctx}");
    for (f, d) in fast.observations.iter().zip(&dense.observations) {
        assert_eq!(f.node, d.node, "{ctx}");
        assert_eq!(f.time, d.time, "{ctx}");
        assert_eq!(f.host.len(), d.host.len(), "{ctx}");
        for (i, (a, b)) in f.host.iter().zip(&d.host).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx} node {} host[{i}]", f.node);
        }
        assert_eq!(f.containers.len(), d.containers.len(), "{ctx}");
        for ((fi, fv), (di, dv)) in f.containers.iter().zip(&d.containers) {
            assert_eq!(fi, di, "{ctx}");
            for (i, (a, b)) in fv.iter().zip(dv).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx} inst {fi} metric[{i}]");
            }
        }
    }
    assert_eq!(fast.kpis.len(), dense.kpis.len(), "{ctx}");
    for ((fa, fk), (da, dk)) in fast.kpis.iter().zip(&dense.kpis) {
        assert_eq!(fa, da, "{ctx}");
        for (x, y) in [
            (fk.offered_rps, dk.offered_rps),
            (fk.throughput_rps, dk.throughput_rps),
            (fk.response_ms, dk.response_ms),
            (fk.dropped_rps, dk.dropped_rps),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx} app {fa:?}");
        }
    }
    assert_eq!(fast.containers.len(), dense.containers.len(), "{ctx}");
    for ((fi, ft), (di, dt)) in fast.containers.iter().zip(&dense.containers) {
        assert_eq!(fi, di, "{ctx}");
        assert_eq!(ft, dt, "{ctx} instance {fi}");
    }
}

/// Builds a random paper-shaped topology: 3–8 nodes, 1–3 applications,
/// each with 1–3 services placed on random nodes. Deterministic given
/// `seed`, so twin clusters are bit-identical at birth.
fn random_cluster(seed: u64) -> (Cluster, Vec<AppId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = rng.gen_range(3..9_u32) as usize;
    let specs: Vec<NodeSpec> = (0..n_nodes)
        .map(|_| match rng.gen_range(0..4_u32) {
            0 => NodeSpec::m1(),
            1 => NodeSpec::m2(),
            2 => NodeSpec::m3(),
            _ => NodeSpec::training_server(),
        })
        .collect();
    let mut cluster = Cluster::new(specs, seed);
    let n_apps = rng.gen_range(1..4_u32) as usize;
    let mut apps = Vec::new();
    for a in 0..n_apps {
        let app = cluster.add_app(&format!("app{a}"));
        let n_services = rng.gen_range(1..4_u32) as usize;
        for s in 0..n_services {
            let node = NodeId(rng.gen_range(0..n_nodes as u32));
            let cpu_ms = 2.0 + rng.gen_range(0.0..12.0_f64);
            let limits = match rng.gen_range(0..3_u32) {
                0 => ContainerLimits::unlimited(),
                1 => ContainerLimits::cpu(1.0 + rng.gen_range(0.0..3.0_f64)),
                _ => ContainerLimits::cpu_and_memory(2.0, 2.0 + rng.gen_range(0.0..6.0_f64)),
            };
            cluster.add_service(
                app,
                ServiceRole {
                    name: format!("svc{s}"),
                    profile: ServiceProfile::test_cpu_bound(&format!("svc{s}"), cpu_ms),
                    fanout: 1.0 + rng.gen_range(0.0..1.5_f64),
                    limits,
                },
                node,
            );
        }
        apps.push(app);
    }
    (cluster, apps)
}

/// Per-app load profiles for a topology, deterministic given `seed`.
fn profiles_for(apps: &[AppId], seed: u64) -> Vec<Box<dyn LoadProfile>> {
    apps.iter()
        .enumerate()
        .map(|(i, _)| -> Box<dyn LoadProfile> {
            match (seed as usize + i) % 5 {
                0 => Box::new(SteppedProfile::new(vec![40.0, 160.0, 90.0, 160.0], 25)),
                1 => Box::new(SineProfile::new(5.0, 300.0, 60, 100_000)),
                2 => Box::new(ConstantProfile::new(120.0, 100_000)),
                3 => Box::new(RampProfile::new(10.0, 400.0, 80)),
                _ => Box::new(TraceProfile::synthesize(seed, 3600, 30, 20.0, 250.0)),
            }
        })
        .collect()
}

/// Runs the event path and the dense twin in lockstep for `ticks`
/// seconds (monitoring at 1 Hz), asserting bitwise-identical reports,
/// with a scale-out and a scale-in fired mid-episode.
fn run_equivalence(seed: u64, ticks: u64, n_jobs: usize) {
    let (cluster, apps) = random_cluster(seed);
    let (mut dense, _) = random_cluster(seed);
    let mut sim = EventSim::new(cluster);
    sim.set_n_jobs(n_jobs);
    for (app, profile) in apps.iter().zip(profiles_for(&apps, seed)) {
        sim.add_workload(*app, profile);
    }
    let dense_profiles = profiles_for(&apps, seed);

    // Mid-episode topology churn on app 0's first service. Instance ids
    // are allocated from a deterministic counter, so the id the
    // scale-out will produce is known upfront and the matching scale-in
    // can be scheduled before the episode starts.
    let scale_node = NodeId((seed % dense.node_ids().len() as u64) as u32);
    let out_at = ticks / 3;
    let in_at = 2 * ticks / 3;
    let added = InstanceId(dense.container_count() as u32);
    sim.schedule_scale_out(out_at, apps[0], "svc0", scale_node);
    sim.schedule_scale_in(in_at, added);

    for t in 0..ticks {
        if t == out_at {
            assert_eq!(dense.scale_out(apps[0], "svc0", scale_node).unwrap(), added);
        }
        if t == in_at {
            assert!(dense.scale_in(added));
        }
        let loads: Vec<(AppId, f64)> = apps
            .iter()
            .zip(&dense_profiles)
            .map(|(a, p)| (*a, p.intensity(t)))
            .collect();
        let report = sim.step();
        let want = dense.step_dense_legacy(&loads);
        assert_reports_identical(report, &want, &format!("seed={seed} t={t}"));
    }
}

#[test]
fn random_topologies_match_dense_bitwise() {
    for seed in 0..4u64 {
        run_equivalence(seed, 75, 1);
    }
}

#[test]
fn parallel_workers_match_dense_bitwise() {
    // Same scenarios, evaluated with 4 workers: shard parallelism must
    // not perturb a single bit.
    for seed in 0..2u64 {
        run_equivalence(seed, 60, 4);
    }
}

/// Mid-episode scale-in is mirrored exactly (not just post-episode).
#[test]
fn mid_episode_scale_in_matches() {
    let (cluster, apps) = random_cluster(9);
    let (mut dense, _) = random_cluster(9);
    let mut sim = EventSim::new(cluster);
    let app = apps[0];
    for (a, p) in apps.iter().zip(profiles_for(&apps, 9)) {
        sim.add_workload(*a, p);
    }
    let dense_profiles = profiles_for(&apps, 9);
    let node = NodeId(0);
    sim.schedule_scale_out(10, app, "svc0", node);
    for t in 0..40u64 {
        if t == 10 {
            let added = dense.scale_out(app, "svc0", node).unwrap();
            dense.scale_in(added); // immediate revert...
            let again = dense.scale_out(app, "svc0", node).unwrap();
            // ...and EventSim mirrors the same three actions at t=10.
            sim.schedule_scale_in(10, added);
            sim.schedule_scale_out(10, app, "svc0", node);
            assert!(again > added);
        }
        let loads: Vec<(AppId, f64)> = apps
            .iter()
            .zip(&dense_profiles)
            .map(|(a, p)| (*a, p.intensity(t)))
            .collect();
        let report = sim.step();
        let want = dense.step_dense_legacy(&loads);
        assert_reports_identical(report, &want, &format!("t={t}"));
    }
}

/// Every load-profile family drives the event path bit-identically to
/// the dense loop, including the trace-driven generator in both
/// interpolation modes.
#[test]
fn all_profile_families_match_dense_bitwise() {
    let mk_profiles = || -> Vec<(&'static str, Box<dyn LoadProfile>)> {
        vec![
            ("sin1000", Box::new(SineProfile::sin1000(100_000))),
            ("sinnoise1000", Box::new(NoisyProfile::<SineProfile>::sinnoise1000(100_000, 3))),
            ("constant", Box::new(ConstantProfile::new(80.0, 100_000))),
            ("stepped", Box::new(SteppedProfile::new(vec![20.0, 200.0, 60.0], 20))),
            ("ramp", Box::new(RampProfile::new(5.0, 500.0, 60))),
            ("locust", Box::new(LocustProfile::new(150.0, 30, 20))),
            (
                "shifted_locust",
                Box::new(ShiftedProfile::new(LocustProfile::new(120.0, 15, 10), 12)),
            ),
            ("sockshop_sum", Box::new(SumProfile::sockshop(0.3))),
            ("daily", Box::new(DailyPatternProfile::new(50.0, 40.0, 300, 100_000, 5))),
            ("trace_sample_step", Box::new(TraceProfile::sample_cluster())),
            ("trace_synth_linear", {
                let mut p = TraceProfile::synthesize(11, 7200, 60, 10.0, 400.0);
                p.set_interp(TraceInterp::Linear);
                Box::new(p)
            }),
        ]
    };
    let build = || {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 17);
        let app = cluster.add_app("probe");
        cluster.add_service(
            app,
            ServiceRole {
                name: "svc".into(),
                profile: ServiceProfile::test_cpu_bound("svc", 8.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(2.0),
            },
            NodeId(0),
        );
        (cluster, app)
    };
    for ((name, profile), (_, dense_profile)) in mk_profiles().into_iter().zip(mk_profiles()) {
        let (cluster, app) = build();
        let (mut dense, _) = build();
        let mut sim = EventSim::new(cluster);
        sim.add_workload(app, profile);
        for t in 0..70u64 {
            let report = sim.step();
            let want = dense.step_dense_legacy(&[(app, dense_profile.intensity(t))]);
            assert_reports_identical(report, &want, &format!("profile={name} t={t}"));
        }
    }
}

/// Two identically seeded event runs pop events in the same order and
/// end bit-identical — the `(time, seq)` tie-break is deterministic.
#[test]
fn identically_seeded_runs_are_bit_identical() {
    let run = || {
        let (cluster, apps) = random_cluster(21);
        let mut sim = EventSim::new(cluster);
        for (a, p) in apps.iter().zip(profiles_for(&apps, 21)) {
            sim.add_workload(*a, p);
        }
        // Two same-second actions: their relative order is fixed by seq.
        sim.schedule_scale_out(8, apps[0], "svc0", NodeId(0));
        sim.schedule_scale_out(8, apps[0], "svc0", NodeId(1));
        let mut host_bits = Vec::new();
        for _ in 0..30 {
            let report = sim.step();
            for o in &report.observations {
                host_bits.extend(o.host.iter().map(|v| v.to_bits()));
            }
        }
        (host_bits, sim.stats(), sim.scale_log().to_vec(), sim.cluster().container_count())
    };
    let (b1, s1, l1, c1) = run();
    let (b2, s2, l2, c2) = run();
    assert_eq!(b1, b2);
    assert_eq!(s1, s2);
    assert_eq!(l1, l2);
    assert_eq!(c1, c2);
}

/// With sparse monitoring, settled stretches are skipped outright: the
/// cluster's work counters show fast-forwarded seconds and a cache-hit
/// ratio, not one evaluation per container-second.
#[test]
fn settled_stretches_are_skipped_not_simulated() {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 3);
    let app = cluster.add_app("quiet");
    cluster.add_service(
        app,
        ServiceRole {
            name: "svc".into(),
            profile: ServiceProfile::test_cpu_bound("svc", 10.0),
            fanout: 1.0,
            limits: ContainerLimits::cpu(1.0),
        },
        NodeId(0),
    );
    let mut sim = EventSim::new(cluster);
    sim.set_monitor_every(300);
    // A stepped profile with one change at t=3600: two long quiet eras.
    sim.add_workload(app, Box::new(SteppedProfile::new(vec![40.0, 110.0], 3600)));
    // Samples land at t = 0, 300, …, 7200 inclusive.
    let samples = sim.run_for(7200);
    assert_eq!(samples, 25);
    let cs = sim.cluster_stats();
    assert_eq!(cs.ticks, 25);
    // Both eras converge in a few hundred seconds; the rest is skipped.
    assert!(cs.skipped_seconds > 5000, "{cs:?}");
    // Every simulated second is accounted for exactly once.
    assert_eq!(cs.state_ticks + cs.ticks + cs.skipped_seconds, 7201, "{cs:?}");
    assert_eq!(sim.stats().load_changes, 2);
}
