//! Closed-loop autoscaling integration: detector → scale-out → replica
//! lifespan → scale-in, with SLO accounting.

use std::sync::Arc;

use monitorless::autoscale::{run_teastore_autoscale, AutoscaleOptions, Policy};
use monitorless::baselines::{BaselineKind, ThresholdBaseline};
use monitorless::experiments::scenario::{eval_workload, EvalApp};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};

fn opts(seed: u64) -> AutoscaleOptions {
    AutoscaleOptions {
        duration: 400,
        replica_lifespan: 120,
        rt_slo_ms: 750.0,
        background_rps: 60.0,
        seed,
    }
}

#[test]
fn monitorless_scaling_beats_no_scaling() {
    let data = generate_training_data(&TrainingOptions {
        run_seconds: 50,
        ramp_seconds: 120,
        seed: 201,
        n_jobs: 1,
    })
    .unwrap();
    let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());
    let profile = eval_workload(EvalApp::TeaStore, 400, 203);

    let mut none = Policy::NoScaling;
    let baseline = run_teastore_autoscale(&mut none, profile.as_ref(), &opts(203)).unwrap();
    let mut ml = Policy::Monitorless(model);
    let scaled = run_teastore_autoscale(&mut ml, profile.as_ref(), &opts(203)).unwrap();

    assert!(baseline.slo_violations > 0, "trace must stress the store");
    assert!(
        scaled.slo_violations <= baseline.slo_violations,
        "monitorless ({}) must not be worse than no scaling ({})",
        scaled.slo_violations,
        baseline.slo_violations
    );
    assert!(scaled.provisioning_pct > 0.0, "monitorless must scale out");
    assert!(
        scaled.provisioning_pct < 50.0,
        "provisioning {}% is excessive",
        scaled.provisioning_pct
    );
}

#[test]
fn aggressive_thresholds_provision_more_than_conservative_ones() {
    let profile = eval_workload(EvalApp::TeaStore, 400, 207);
    let run_with = |cpu: f64| {
        let mut policy = Policy::Threshold(ThresholdBaseline {
            kind: BaselineKind::Cpu,
            cpu_threshold: cpu,
            mem_threshold: 100.0,
        });
        run_teastore_autoscale(&mut policy, profile.as_ref(), &opts(207)).unwrap()
    };
    let aggressive = run_with(40.0);
    let conservative = run_with(98.0);
    assert!(
        aggressive.provisioning_pct >= conservative.provisioning_pct,
        "lower threshold must provision at least as much ({} vs {})",
        aggressive.provisioning_pct,
        conservative.provisioning_pct
    );
}

#[test]
fn replicas_expire_after_their_lifespan() {
    let profile = eval_workload(EvalApp::TeaStore, 400, 211);
    // A detector that fires exactly once (RT threshold crossed only at
    // the biggest peak) must end the run with no extra capacity lingering
    // beyond its lifespan — observable through a provisioning average
    // far below the always-on bound.
    let mut policy = Policy::RtBased {
        rt_threshold_ms: 2500.0,
    };
    let result = run_teastore_autoscale(&mut policy, profile.as_ref(), &opts(211)).unwrap();
    // Two replicas over 7 containers, always on, would be ~28.6%.
    assert!(
        result.provisioning_pct < 28.0,
        "provisioning {}% suggests replicas never expire",
        result.provisioning_pct
    );
}
