//! Property suite for the streaming drift detector (ISSUE 6).
//!
//! Pins the three contract points of `monitorless::drift`:
//!
//! 1. **False-positive rate.** On stationary synthetic streams drawn
//!    from the profiled distribution, at most 1 % of 100 seeds may ever
//!    raise an alert.
//! 2. **Guaranteed detection.** An injected mean or scale shift is
//!    detected within a bounded number of rows after onset, on every
//!    seed.
//! 3. **Persistence.** The reference profile round-trips through
//!    `MonitorlessModel` save/load, and a loaded model's detector is
//!    equivalent to the original's.

use monitorless::drift::{DriftConfig, DriftProfile, PROFILE_BINS};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};
use monitorless_learn::Matrix;
use monitorless_std::rng::{Rng as _, StdRng};

/// One standard normal draw (Box–Muller).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1 = rng.gen_f64().max(1e-12);
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A reference profile over `cols` gaussian features with distinct
/// means/scales, captured from `rows` training samples.
fn gaussian_profile(rng: &mut StdRng, rows: usize, cols: usize) -> DriftProfile {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|c| c as f64 + (1.0 + 0.5 * c as f64) * gaussian(rng))
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
    DriftProfile::from_matrix(&Matrix::from_rows(&refs))
}

#[test]
fn false_positive_rate_at_most_one_percent_over_100_seeds() {
    const SEEDS: u64 = 100;
    const STREAM_ROWS: usize = 1500;
    let mut alerting_seeds = 0;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xFACE + seed);
        let profile = gaussian_profile(&mut rng, 1500, 4);
        let mut det = profile.detector(DriftConfig::default());
        let mut row = [0.0; 4];
        let mut alerted = false;
        for _ in 0..STREAM_ROWS {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = c as f64 + (1.0 + 0.5 * c as f64) * gaussian(&mut rng);
            }
            if let Some(check) = det.push(&row) {
                alerted |= !check.new_alerts.is_empty();
            }
        }
        if alerted {
            alerting_seeds += 1;
        }
    }
    assert!(
        alerting_seeds <= SEEDS / 100,
        "{alerting_seeds}/{SEEDS} stationary seeds raised a drift alert (allowed: 1%)"
    );
}

#[test]
fn injected_shifts_are_detected_within_bound_on_every_seed() {
    let cfg = DriftConfig::default();
    // One full window refill plus the hysteresis patience, rounded up a
    // cadence: the documented detection bound.
    let bound = cfg.window + (cfg.patience + 1) * cfg.check_every;
    for seed in 0..20u64 {
        for scale_shift in [false, true] {
            let mut rng = StdRng::seed_from_u64(0xD21F7 + seed);
            let profile = gaussian_profile(&mut rng, 1500, 3);
            let mut det = profile.detector(cfg);
            let mut row = [0.0; 3];
            // Stationary warmup.
            for _ in 0..cfg.window {
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = c as f64 + (1.0 + 0.5 * c as f64) * gaussian(&mut rng);
                }
                det.push(&row);
            }
            assert!(!det.drifting(), "seed {seed}: drifted during warmup");
            // Onset: feature 2 shifts by 3 reference stds (mean) or its
            // scale quadruples.
            let mut detected = false;
            for _ in 0..bound {
                for (c, slot) in row.iter_mut().enumerate() {
                    let std = 1.0 + 0.5 * c as f64;
                    *slot = if c == 2 {
                        if scale_shift {
                            c as f64 + 4.0 * std * gaussian(&mut rng)
                        } else {
                            c as f64 + 3.0 * std + std * gaussian(&mut rng)
                        }
                    } else {
                        c as f64 + std * gaussian(&mut rng)
                    };
                }
                if let Some(check) = det.push(&row) {
                    if check.new_alerts.contains(&2) {
                        detected = true;
                        break;
                    }
                }
            }
            assert!(
                detected,
                "seed {seed}: {} shift in feature 2 not detected within {bound} rows \
                 (scores {:?})",
                if scale_shift { "scale" } else { "mean" },
                det.scores()
            );
        }
    }
}

#[test]
fn shifted_feature_outranks_stationary_features() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let profile = gaussian_profile(&mut rng, 1500, 3);
    let mut det = profile.detector(DriftConfig::default());
    let mut row = [0.0; 3];
    for t in 0..1000usize {
        for (c, slot) in row.iter_mut().enumerate() {
            let std = 1.0 + 0.5 * c as f64;
            let shift = if c == 0 && t >= 500 { 5.0 * std } else { 0.0 };
            *slot = c as f64 + shift + std * gaussian(&mut rng);
        }
        det.push(&row);
    }
    let scores = det.scores();
    assert!(scores[0] > scores[1] && scores[0] > scores[2], "PSI ranking wrong: {scores:?}");
    assert_eq!(det.alerted_features(), vec![0]);
}

#[test]
fn reference_profile_roundtrips_through_model_persistence() {
    let data = generate_training_data(&TrainingOptions {
        run_seconds: 30,
        ramp_seconds: 100,
        seed: 11,
        n_jobs: 1,
    })
    .unwrap();
    let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
    let profile = model
        .drift_profile()
        .expect("training captures a profile")
        .clone();
    assert_eq!(profile.n_features(), model.flat().n_features());
    for fp in &profile.features {
        assert_eq!(fp.edges.len(), PROFILE_BINS - 1);
        assert!(fp.edges.windows(2).all(|w| w[0] <= w[1]), "edges not ascending");
        assert!(fp.std >= 0.0);
    }

    let path = std::env::temp_dir().join("monitorless_drift_profile_roundtrip.json");
    model.save(&path).unwrap();
    let back = MonitorlessModel::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(back.drift_profile(), Some(&profile), "profile changed across save/load");

    // A loaded model yields a working, equivalent detector.
    let mut a = model.drift_detector(DriftConfig::default()).unwrap();
    let mut b = back.drift_detector(DriftConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let width = profile.n_features();
    let mut row = vec![0.0; width];
    for _ in 0..600 {
        for slot in row.iter_mut() {
            *slot = rng.gen_f64() * 10.0 - 5.0;
        }
        let ca = a.push(&row);
        let cb = b.push(&row);
        assert_eq!(ca, cb, "detectors diverged on identical input");
    }
    assert_eq!(a.scores(), b.scores());
}

#[test]
fn old_model_json_without_profile_still_loads() {
    let data = generate_training_data(&TrainingOptions {
        run_seconds: 30,
        ramp_seconds: 100,
        seed: 13,
        n_jobs: 1,
    })
    .unwrap();
    let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
    let path = std::env::temp_dir().join("monitorless_drift_profile_legacy.json");
    model.save(&path).unwrap();
    // Strip the drift member to emulate a pre-profile save.
    let json = std::fs::read_to_string(&path).unwrap();
    let parsed = monitorless_std::json::Json::parse(&json).unwrap();
    let monitorless_std::json::Json::Obj(members) = parsed else {
        panic!("model JSON must be an object")
    };
    let stripped = monitorless_std::json::Json::Obj(
        members.into_iter().filter(|(k, _)| k != "drift").collect(),
    );
    std::fs::write(&path, monitorless_std::json::to_string(&stripped)).unwrap();
    let legacy = MonitorlessModel::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(legacy.drift_profile().is_none());
    assert!(legacy.drift_detector(DriftConfig::default()).is_none());
    // Prediction is unaffected.
    let p1 = model
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    let p2 = legacy
        .predict_proba_batch(data.dataset.x(), data.dataset.groups())
        .unwrap();
    assert_eq!(p1, p2);
}
