//! Sockshop evaluation (Table 8): fourteen services, three overlapping
//! Locust load ramps, co-located with TeaStore — the paper's hardest
//! transfer target.
//!
//! ```sh
//! cargo run --example sockshop_eval --release
//! ```

use std::sync::Arc;

use monitorless::experiments::scenario::{run_eval_scenario, EvalApp, EvalOptions};
use monitorless::experiments::{comparison_header, scenario};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training the monitorless model...");
    let data = generate_training_data(&TrainingOptions::quick(5))?;
    let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick())?);

    // The paper's Sockshop trace is 3×1000 s Locust runs starting at
    // 1000/3000/5000 s; cover the first two (including their overlap).
    let opts = EvalOptions {
        duration: 2500,
        ramp_seconds: 250,
        seed: 19,
        record_raw: false,
    };
    println!("running the Sockshop scenario ({} s)...", opts.duration);
    let run = run_eval_scenario(EvalApp::Sockshop, Some(&model), &opts)?;
    let saturated: usize = run.ground_truth.iter().map(|&v| v as usize).sum();
    println!(
        "saturated samples: {saturated}/{} ({:.1}%), Y = {:.0} req/s\n",
        run.ground_truth.len(),
        100.0 * saturated as f64 / run.ground_truth.len() as f64,
        run.upsilon
    );

    println!("{}", comparison_header());
    for row in scenario::comparison_rows(&run) {
        println!("{}", row.format());
    }
    println!("\n(thresholds of the baselines are tuned a posteriori on this very run —");
    println!(" the best case for thresholds; monitorless is unmodified, as in the paper)");
    Ok(())
}
