//! TeaStore autoscaling scenario (Section 4.2.2 / Table 7): drive the
//! seven-service TeaStore with a worst-case daily-pattern trace in a
//! multi-tenant deployment and compare autoscaling policies.
//!
//! ```sh
//! cargo run --example teastore_autoscaling --release
//! ```

use std::sync::Arc;

use monitorless::autoscale::{run_teastore_autoscale, AutoscaleOptions, Policy};
use monitorless::experiments::scenario::{eval_workload, EvalApp};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, TrainingOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training the monitorless model...");
    let data = generate_training_data(&TrainingOptions::quick(3))?;
    let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick())?);

    let opts = AutoscaleOptions::quick(17);
    let profile = eval_workload(EvalApp::TeaStore, opts.duration, 17);

    println!("running autoscaling policies over a {}s trace...\n", opts.duration);
    println!(
        "{:<26} {:>18} {:>14} {:>14}",
        "Policy", "Provisioning (Avg)", "SLO viol. (#)", "Scale events"
    );
    for mut policy in [
        Policy::NoScaling,
        Policy::Monitorless(Arc::clone(&model)),
        Policy::RtBased {
            rt_threshold_ms: 500.0,
        },
    ] {
        let result = run_teastore_autoscale(&mut policy, profile.as_ref(), &opts)?;
        println!(
            "{:<26} {:>17.1}% {:>14} {:>14}",
            result.policy, result.provisioning_pct, result.slo_violations, result.scale_out_events
        );
    }
    println!(
        "\nmonitorless scales {:?} together, replicas live 120 s, SLO = 750 ms avg RT",
        monitorless::autoscale::SCALED_SERVICES
    );
    Ok(())
}
