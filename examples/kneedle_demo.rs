//! Figure 2 demo: ramp a simulated Solr service, smooth the throughput
//! curve with Savitzky-Golay, and find the knee with Kneedle.
//!
//! ```sh
//! cargo run --example kneedle_demo --release [-- --csv]
//! ```
//!
//! With `--csv` the three series (observed, smoothed, difference) are
//! printed as CSV — the data behind the paper's Figure 2.

use monitorless::experiments::fig2::{run, Fig2Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = std::env::args().any(|a| a == "--csv");
    let data = run(&Fig2Options::default())?;
    if csv {
        print!("{}", data.to_csv());
        return Ok(());
    }

    println!("Figure 2 — Kneedle on a linearly increasing Solr load\n");
    println!(
        "knee detected at workload {:.0} req/s, KPI threshold Y = {:.1} req/s (strength {:.3})",
        data.knee.x, data.knee.y, data.knee.strength
    );
    println!("candidate knees at indices: {:?}\n", data.knee.candidates);

    // A small ASCII sketch of the observed and difference curves.
    let n = data.workload.len();
    let max_tp = data.observed.iter().cloned().fold(0.0, f64::max);
    println!("observed throughput (#) and difference curve (*), 60 columns:");
    for row in (0..12).rev() {
        let mut line = String::new();
        for col in 0..60 {
            let i = col * n / 60;
            let tp_level = (data.observed[i] / max_tp * 12.0) as usize;
            let diff_level = (data.difference[i].max(0.0) * 12.0 / 0.5) as usize;
            line.push(if tp_level == row {
                '#'
            } else if diff_level == row {
                '*'
            } else {
                ' '
            });
        }
        println!("{line}");
    }
    println!("{}", "-".repeat(60));
    println!("workload 0 .. {:.0} req/s", data.workload[n - 1]);
    Ok(())
}
