//! Quickstart: train a monitorless model and detect saturation in a
//! service it has never seen — without touching application KPIs at
//! inference time.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use std::sync::Arc;

use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::orchestrator::{Aggregation, Orchestrator};
use monitorless::training::{generate_training_data, TrainingOptions};
use monitorless_metrics::NodeId;
use monitorless_sim::apps::{build_single, solr_profile};
use monitorless_sim::{Cluster, ContainerLimits, NodeSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate labeled training data from the paper's 25 training
    //    configurations (Solr / Memcache / Cassandra under different
    //    limits and traffic; Table 1).
    println!("generating training data (25 configurations)...");
    let data = generate_training_data(&TrainingOptions::quick(7))?;
    println!(
        "  {} samples, {} raw metrics, {:.0}% saturated",
        data.dataset.len(),
        data.dataset.n_features(),
        100.0 * data.dataset.positive_fraction()
    );

    // 2. Train the model: feature pipeline (binary levels, log scaling,
    //    normalization, forest filtering, time and product features) +
    //    random forest with the paper's 0.4 decision threshold.
    println!("training the monitorless model...");
    let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick())?);
    println!(
        "  pipeline: {} model features; forest: {} trees",
        model.pipeline().output_width(),
        model.forest().trees().len()
    );

    // 3. Deploy an *unseen* configuration and watch it saturate.
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 99);
    let (app, _instance) = build_single(
        &mut cluster,
        solr_profile(),
        ContainerLimits::cpu(2.0), // ~30 req/s capacity
        NodeId(0),
    );
    let mut orchestrator = Orchestrator::new(Arc::clone(&model));

    println!("\n  t  offered  throughput  rt_ms  predicted");
    for t in 0..60u64 {
        // Ramp right through the knee.
        let offered = 2.0 + t as f64;
        let report = cluster.step(&[(app, offered)]);
        let kpi = report.kpi(app).expect("app exists");
        let predictions = orchestrator.step(&report.observations)?;
        let saturated = Orchestrator::application_prediction(
            predictions,
            cluster.app(app).instances(),
            Aggregation::Or,
        );
        if t % 5 == 0 || saturated == 1 {
            println!(
                "{:>3}  {:>7.1}  {:>10.1}  {:>5.0}  {}",
                t,
                offered,
                kpi.throughput_rps,
                kpi.response_ms,
                if saturated == 1 { "SATURATED" } else { "ok" }
            );
        }
    }
    Ok(())
}
