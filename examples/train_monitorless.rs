//! Full training walkthrough: generate the Table 1 dataset, train the
//! model, inspect the top features (Table 4) and persist the model.
//!
//! ```sh
//! cargo run --example train_monitorless --release [-- <output.json>]
//! ```

use monitorless::experiments::table4;
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{generate_training_data, table1, TrainingOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args().nth(1);

    println!("Table 1 — training configurations:");
    for config in table1() {
        println!(
            "  #{:<2} {:<8} traffic {:<16} expected bottleneck {}",
            config.id,
            config.service.short_name(),
            config.traffic.describe(),
            config.expected_bottleneck
        );
    }

    println!("\ngenerating training data...");
    let data = generate_training_data(&TrainingOptions::quick(1))?;
    println!(
        "  {} samples across {} configurations; {:.0}% saturated; {} thresholds calibrated",
        data.dataset.len(),
        data.dataset.distinct_groups().len(),
        100.0 * data.dataset.positive_fraction(),
        data.thresholds.iter().filter(|(_, t)| t.is_some()).count(),
    );

    println!("\ntraining...");
    let model = MonitorlessModel::train(&data, &ModelOptions::quick())?;
    let pred = model.predict_batch(data.dataset.x(), data.dataset.groups())?;
    let f1 = monitorless_learn::metrics::f1_score(data.dataset.y(), &pred);
    println!("  training F1 = {f1:.3}");

    println!("\nTable 4 — top 15 features by forest importance:");
    print!("{}", table4::format(&table4::run(&model, 15)));

    if let Some(path) = out {
        model.save(std::path::Path::new(&path))?;
        println!("\nmodel saved to {path}");
    }
    Ok(())
}
